// Edge cases of the stats layer: degenerate samples (empty, single,
// zero-variance), histogram bucket boundaries, and the JSON table
// rendering — the inputs every aggregation path produces eventually
// (e.g. a point where all runs timed out yields empty summaries).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "src/stats/histogram.h"
#include "src/stats/regression.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace wsync {
namespace {

TEST(SummaryEdgeTest, EmptySampleIsAllZeros) {
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(SummaryEdgeTest, SingleSampleHasZeroSpread) {
  const std::array<double, 1> values = {7.5};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.p50, 7.5);
  EXPECT_DOUBLE_EQ(s.p90, 7.5);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
}

TEST(SummaryEdgeTest, ConstantSampleHasZeroStddev) {
  const std::array<double, 4> values = {3, 3, 3, 3};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 3.0);
}

TEST(SummaryEdgeTest, NegativeValuesKeepOrdering) {
  const std::array<double, 3> values = {-5, -1, -3};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.min, -5.0);
  EXPECT_DOUBLE_EQ(s.max, -1.0);
  EXPECT_DOUBLE_EQ(s.p50, -3.0);
}

TEST(QuantileEdgeTest, SingleSampleIgnoresQ) {
  const std::array<double, 1> values = {2.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.37), 2.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 2.0);
}

TEST(MeanCiEdgeTest, DegenerateSamplesHaveZeroHalfWidth) {
  EXPECT_DOUBLE_EQ(mean_ci({}).half_width, 0.0);
  const std::array<double, 1> one = {4.0};
  EXPECT_DOUBLE_EQ(mean_ci(one).mean, 4.0);
  EXPECT_DOUBLE_EQ(mean_ci(one).half_width, 0.0);
  const std::array<double, 5> constant = {2, 2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(mean_ci(constant).half_width, 0.0);
}

TEST(WilsonEdgeTest, ZeroTrialsYieldsZeroInterval) {
  const Proportion p = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(p.estimate, 0.0);
  EXPECT_DOUBLE_EQ(p.lower, 0.0);
  EXPECT_DOUBLE_EQ(p.upper, 0.0);
}

TEST(LinearFitEdgeTest, ZeroVarianceYIsAPerfectFlatFit) {
  const std::array<double, 4> x = {1, 2, 3, 4};
  const std::array<double, 4> y = {5, 5, 5, 5};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  // ss_tot == ss_res == 0: the convention is a perfect fit, not NaN.
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(LinearFitEdgeTest, ZeroVarianceYWithNoiseReportsZeroR2) {
  // Flat y cannot be explained at all once residuals are forced nonzero:
  // a sloped x with y constant except one point.
  const std::array<double, 3> x = {1, 2, 30};
  const std::array<double, 3> y = {5, 5, 5};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);  // still exact: slope 0 passes through
}

TEST(ModelFitEdgeTest, AllZeroYGivesZeroConstantPerfectR2) {
  const std::array<double, 3> model = {1, 2, 3};
  const std::array<double, 3> y = {0, 0, 0};
  const ModelFit fit = model_fit(model, y);
  EXPECT_DOUBLE_EQ(fit.constant, 0.0);
  // Zero y-values are skipped by the relative-error scan.
  EXPECT_DOUBLE_EQ(fit.max_relative_error, 0.0);
  EXPECT_DOUBLE_EQ(fit.r2, 1.0);
}

TEST(ModelFitEdgeTest, SinglePointFitsExactly) {
  const std::array<double, 1> model = {4};
  const std::array<double, 1> y = {10};
  const ModelFit fit = model_fit(model, y);
  EXPECT_DOUBLE_EQ(fit.constant, 2.5);
  EXPECT_DOUBLE_EQ(fit.max_relative_error, 0.0);
}

TEST(PowerFitEdgeTest, ConstantCurveHasZeroExponent) {
  const std::array<double, 4> x = {1, 2, 4, 8};
  const std::array<double, 4> y = {3, 3, 3, 3};
  const PowerFit fit = power_fit(x, y);
  EXPECT_NEAR(fit.exponent, 0.0, 1e-12);
  EXPECT_NEAR(fit.constant, 3.0, 1e-12);
}

TEST(HistogramEdgeTest, ValueOnInteriorBoundaryGoesToUpperBin) {
  // Bins over [0, 10) in 5 steps of width 2: boundary values belong to the
  // half-open upper bin, matching the [lo, hi) convention.
  Histogram h(0.0, 10.0, 5);
  h.add(2.0);
  EXPECT_EQ(h.bin_count(0), 0);
  EXPECT_EQ(h.bin_count(1), 1);
  h.add(4.0);
  EXPECT_EQ(h.bin_count(2), 1);
}

TEST(HistogramEdgeTest, LoAndHiBoundaries) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);  // lo belongs to bin 0
  EXPECT_EQ(h.bin_count(0), 1);
  h.add(10.0);  // hi is outside [lo, hi); clamped into the last bin
  EXPECT_EQ(h.bin_count(4), 1);
  h.add(std::nextafter(10.0, 0.0));  // just inside
  EXPECT_EQ(h.bin_count(4), 2);
}

TEST(HistogramEdgeTest, SingleBinTakesEverything) {
  Histogram h(-1.0, 1.0, 1);
  h.add(-100.0);
  h.add(0.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 3);
  EXPECT_EQ(h.total(), 3);
}

TEST(HistogramEdgeTest, BinEdgesPartitionTheRange) {
  Histogram h(0.0, 1.0, 4);
  for (int b = 0; b < h.bins(); ++b) {
    EXPECT_DOUBLE_EQ(h.bin_high(b), h.bin_low(b) + 0.25);
    if (b > 0) {
      EXPECT_DOUBLE_EQ(h.bin_low(b), h.bin_high(b - 1));
    }
  }
}

TEST(TableJsonTest, NumbersUnquotedStringsEscaped) {
  Table table({"name", "count", "ratio"});
  table.row().cell("alpha \"x\"").cell(int64_t{42}).cell(0.5, 2);
  table.row().cell("line\nbreak").cell(int64_t{-7}).cell(-1.25, 2);
  const std::string json = table.json();
  EXPECT_NE(json.find("{\"name\": \"alpha \\\"x\\\"\", \"count\": 42, "
                      "\"ratio\": 0.50}"),
            std::string::npos);
  EXPECT_NE(json.find("\"line\\nbreak\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"ratio\": -1.25"), std::string::npos);
}

TEST(TableJsonTest, EmptyTableIsEmptyArray) {
  Table table({"a"});
  EXPECT_EQ(table.json(), "[]");
}

TEST(TableJsonTest, IndentAppliesToEveryLine) {
  Table table({"a"});
  table.row().cell(int64_t{1});
  EXPECT_EQ(table.json(2), "  [\n    {\"a\": 1}\n  ]");
}

TEST(TableJsonTest, NonNumericLookalikesStayQuoted) {
  Table table({"v"});
  table.row().cell("1,024");
  table.row().cell("3.");
  table.row().cell("-");
  table.row().cell("1e5");  // exponents are not produced by cell(); quoted
  table.row().cell("007");  // JSON forbids leading zeros
  table.row().cell("-007");
  const std::string json = table.json();
  EXPECT_NE(json.find("\"1,024\""), std::string::npos);
  EXPECT_NE(json.find("\"3.\""), std::string::npos);
  EXPECT_NE(json.find("\"-\""), std::string::npos);
  EXPECT_NE(json.find("\"1e5\""), std::string::npos);
  EXPECT_NE(json.find("\"007\""), std::string::npos);
  EXPECT_NE(json.find("\"-007\""), std::string::npos);
}

TEST(TableJsonTest, ZeroFormsStayNumeric) {
  Table table({"v"});
  table.row().cell(int64_t{0});
  table.row().cell(0.5, 2);
  table.row().cell(-0.25, 2);
  const std::string json = table.json();
  EXPECT_NE(json.find("{\"v\": 0}"), std::string::npos);
  EXPECT_NE(json.find("{\"v\": 0.50}"), std::string::npos);
  EXPECT_NE(json.find("{\"v\": -0.25}"), std::string::npos);
}

TEST(JsonEscapedTest, QuotesAndControlCharacters) {
  EXPECT_EQ(json_escaped("plain"), "\"plain\"");
  EXPECT_EQ(json_escaped("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_escaped("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(json_escaped(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(TableJsonTest, RejectsIncompleteLastRow) {
  Table table({"a", "b"});
  table.row().cell("only");
  EXPECT_THROW(table.json(), std::invalid_argument);
}

TEST(TableCsvTest, PlainCellsStayBare) {
  Table table({"name", "count"});
  table.row().cell("alpha").cell(int64_t{42});
  table.row().cell("beta").cell(int64_t{-7});
  EXPECT_EQ(table.csv(), "name,count\nalpha,42\nbeta,-7\n");
}

TEST(TableCsvTest, QuotesCommasQuotesAndLineBreaks) {
  Table table({"v"});
  table.row().cell("a,b");
  table.row().cell("say \"hi\"");
  table.row().cell("line\nbreak");
  table.row().cell("cr\rhere");
  EXPECT_EQ(table.csv(),
            "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line\nbreak\"\n"
            "\"cr\rhere\"\n");
}

TEST(TableCsvTest, QuotesHeadersToo) {
  Table table({"plain", "with,comma"});
  table.row().cell("x").cell("y");
  EXPECT_EQ(table.csv(), "plain,\"with,comma\"\nx,y\n");
}

TEST(TableCsvTest, EmptyTableIsHeaderOnly) {
  Table table({"a", "b"});
  EXPECT_EQ(table.csv(), "a,b\n");
}

TEST(TableCsvTest, EmptyCellsRoundTrip) {
  Table table({"a", "b"});
  table.row().cell("").cell("");
  EXPECT_EQ(table.csv(), "a,b\n,\n");
}

TEST(TableCsvTest, RejectsIncompleteLastRow) {
  Table table({"a", "b"});
  table.row().cell("only");
  EXPECT_THROW(table.csv(), std::invalid_argument);
}

}  // namespace
}  // namespace wsync
