// Determinism under parallelism: the parallel runner must produce
// bit-identical RunOutcomes to the serial runner on the same seeds, for any
// worker count — each run derives all randomness from its own seed's forked
// Rng streams, so the thread schedule cannot leak into results.
#include "src/sync/runner.h"

#include <gtest/gtest.h>

#include "src/adversary/basic.h"
#include "src/trapdoor/trapdoor.h"

namespace wsync {
namespace {

RunSpec trapdoor_spec(int F, int t, int64_t N, int n, RoundId max_rounds) {
  RunSpec spec;
  spec.sim.F = F;
  spec.sim.t = t;
  spec.sim.N = N;
  spec.sim.n = n;
  spec.factory = TrapdoorProtocol::factory();
  spec.make_adversary = [t] {
    return std::make_unique<RandomSubsetAdversary>(t);
  };
  spec.make_activation = [n] {
    return std::make_unique<SimultaneousActivation>(n);
  };
  spec.max_rounds = max_rounds;
  return spec;
}

void expect_identical(const RunOutcome& a, const RunOutcome& b, size_t i) {
  EXPECT_EQ(a.synced, b.synced) << "seed index " << i;
  EXPECT_EQ(a.rounds, b.rounds) << "seed index " << i;
  EXPECT_EQ(a.last_sync_round, b.last_sync_round) << "seed index " << i;
  EXPECT_EQ(a.sync_latency, b.sync_latency) << "seed index " << i;
  EXPECT_EQ(a.properties.rounds_observed, b.properties.rounds_observed)
      << "seed index " << i;
  EXPECT_EQ(a.properties.synch_commit_violations,
            b.properties.synch_commit_violations)
      << "seed index " << i;
  EXPECT_EQ(a.properties.correctness_violations,
            b.properties.correctness_violations)
      << "seed index " << i;
  EXPECT_EQ(a.properties.agreement_violations,
            b.properties.agreement_violations)
      << "seed index " << i;
  EXPECT_EQ(a.properties.max_simultaneous_leaders,
            b.properties.max_simultaneous_leaders)
      << "seed index " << i;
  // Bit-identical, not approximately equal: same run, same float ops.
  EXPECT_EQ(a.max_broadcast_weight, b.max_broadcast_weight)
      << "seed index " << i;
}

TEST(ParallelRunnerTest, BitIdenticalToSerialAcrossWorkerCounts) {
  RunSpec spec = trapdoor_spec(8, 2, 32, 6, 200000);
  spec.extra_rounds = 64;
  const std::vector<uint64_t> seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto serial = run_sync_experiments(spec, seeds);
  ASSERT_EQ(serial.size(), seeds.size());

  for (const int workers :
       {1, 4, ThreadPool::default_workers()}) {
    const auto parallel =
        run_sync_experiments_parallel(spec, seeds, workers);
    ASSERT_EQ(parallel.size(), seeds.size()) << "workers " << workers;
    for (size_t i = 0; i < seeds.size(); ++i) {
      expect_identical(serial[i], parallel[i], i);
    }
  }
}

TEST(ParallelRunnerTest, SharedPoolOverloadMatchesSerial) {
  const RunSpec spec = trapdoor_spec(8, 2, 32, 4, 200000);
  const std::vector<uint64_t> seeds = {10, 20, 30, 40};
  const auto serial = run_sync_experiments(spec, seeds);
  ThreadPool pool(4);
  // Re-using one pool across calls must not perturb results either.
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto parallel = run_sync_experiments_parallel(spec, seeds, pool);
    ASSERT_EQ(parallel.size(), seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i) {
      expect_identical(serial[i], parallel[i], i);
    }
  }
}

TEST(ParallelRunnerTest, EmptySeedListYieldsEmptyOutcomes) {
  const RunSpec spec = trapdoor_spec(4, 1, 8, 2, 1000);
  EXPECT_TRUE(run_sync_experiments_parallel(spec, {}, 4).empty());
}

TEST(ParallelRunnerTest, UnsyncedRunsSurviveParallelReplication) {
  const RunSpec spec = trapdoor_spec(8, 2, 1024, 4, 3);  // 3-round budget
  const std::vector<uint64_t> seeds = {7, 8, 9};
  const auto outcomes = run_sync_experiments_parallel(spec, seeds, 4);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const RunOutcome& outcome : outcomes) {
    EXPECT_FALSE(outcome.synced);
    EXPECT_EQ(outcome.rounds, 3);
  }
}

TEST(ParallelRunnerTest, InvalidSpecPropagatesException) {
  RunSpec spec;  // no factory/producers: run_sync_experiment throws
  spec.max_rounds = 10;
  EXPECT_THROW(run_sync_experiments_parallel(spec, {1, 2}, 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace wsync
