#include "src/sync/runner.h"

#include <gtest/gtest.h>

#include "src/adversary/basic.h"
#include "src/trapdoor/trapdoor.h"

namespace wsync {
namespace {

RunSpec trapdoor_spec(int F, int t, int64_t N, int n, RoundId max_rounds) {
  RunSpec spec;
  spec.sim.F = F;
  spec.sim.t = t;
  spec.sim.N = N;
  spec.sim.n = n;
  spec.factory = TrapdoorProtocol::factory();
  spec.make_adversary = [t] {
    return std::make_unique<RandomSubsetAdversary>(t);
  };
  spec.make_activation = [n] {
    return std::make_unique<SimultaneousActivation>(n);
  };
  spec.max_rounds = max_rounds;
  return spec;
}

TEST(RunnerTest, TrapdoorRunReachesLivenessWithCleanProperties) {
  const RunSpec spec = trapdoor_spec(8, 2, 32, 8, 200000);
  RunSpec seeded = spec;
  seeded.sim.seed = 12345;
  const RunOutcome outcome = run_sync_experiment(seeded);
  EXPECT_TRUE(outcome.synced);
  EXPECT_TRUE(outcome.properties.ok());
  EXPECT_GT(outcome.rounds, 0);
  EXPECT_EQ(outcome.properties.max_simultaneous_leaders, 1);
  for (RoundId latency : outcome.sync_latency) {
    EXPECT_GE(latency, 0);
  }
  EXPECT_LE(outcome.last_sync_round, outcome.rounds);
}

TEST(RunnerTest, ExtraRoundsKeepVerifying) {
  RunSpec spec = trapdoor_spec(8, 2, 32, 4, 200000);
  spec.extra_rounds = 500;
  spec.sim.seed = 99;
  const RunOutcome outcome = run_sync_experiment(spec);
  EXPECT_TRUE(outcome.synced);
  EXPECT_TRUE(outcome.properties.ok());
  EXPECT_GE(outcome.properties.rounds_observed, outcome.rounds + 500);
}

TEST(RunnerTest, BudgetExhaustionReportsNotSynced) {
  const RunSpec spec = trapdoor_spec(8, 2, 1024, 4, 3);  // 3 rounds only
  RunSpec seeded = spec;
  seeded.sim.seed = 7;
  const RunOutcome outcome = run_sync_experiment(seeded);
  EXPECT_FALSE(outcome.synced);
  EXPECT_EQ(outcome.rounds, 3);
}

TEST(RunnerTest, SeedsProduceIndependentButDeterministicRuns) {
  const RunSpec spec = trapdoor_spec(8, 2, 32, 6, 200000);
  const std::vector<uint64_t> seeds = {1, 2, 3};
  const auto a = run_sync_experiments(spec, seeds);
  const auto b = run_sync_experiments(spec, seeds);
  ASSERT_EQ(a.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a[i].rounds, b[i].rounds);
    EXPECT_EQ(a[i].last_sync_round, b[i].last_sync_round);
  }
}

TEST(RunnerTest, ValidatesSpec) {
  RunSpec spec;
  EXPECT_THROW(run_sync_experiment(spec), std::invalid_argument);
  spec = trapdoor_spec(4, 1, 4, 2, 0);
  EXPECT_THROW(run_sync_experiment(spec), std::invalid_argument);
}

TEST(RunnerTest, MaxBroadcastWeightIsTracked) {
  RunSpec spec = trapdoor_spec(4, 1, 16, 8, 200000);
  spec.sim.seed = 5;
  const RunOutcome outcome = run_sync_experiment(spec);
  EXPECT_GT(outcome.max_broadcast_weight, 0.0);
}

TEST(RunnerTest, SingleNodeEventuallyLeadsItself) {
  const RunSpec spec = trapdoor_spec(4, 1, 16, 1, 200000);
  RunSpec seeded = spec;
  seeded.sim.seed = 77;
  const RunOutcome outcome = run_sync_experiment(seeded);
  EXPECT_TRUE(outcome.synced);
  EXPECT_TRUE(outcome.properties.ok());
}

}  // namespace
}  // namespace wsync
