#include "src/sync/verifier.h"

#include <gtest/gtest.h>

#include "src/adversary/basic.h"
#include "tests/testing/fake_protocol.h"

namespace wsync {
namespace {

using testing::FakeProtocol;

/// A protocol whose outputs follow an explicit script of values
/// (SyncOutput::kBottom for ⊥), for violating properties on purpose.
class OutputScriptProtocol final : public Protocol {
 public:
  OutputScriptProtocol(std::vector<int64_t> outputs, Role role)
      : outputs_(std::move(outputs)), role_(role) {}

  void on_activate(Rng&) override {}
  RoundAction act(Rng&) override { return RoundAction::listen(0); }
  void on_round_end(const std::optional<Message>&, Rng&) override { ++age_; }
  SyncOutput output() const override {
    const size_t i =
        std::min(static_cast<size_t>(age_ > 0 ? age_ - 1 : 0),
                 outputs_.size() - 1);
    return SyncOutput{outputs_[i]};
  }
  Role role() const override { return role_; }

 private:
  std::vector<int64_t> outputs_;
  Role role_;
  int64_t age_ = 0;
};

constexpr int64_t kBot = SyncOutput::kBottom;

Simulation make_sim(std::map<NodeId, std::vector<int64_t>> scripts,
                    std::map<NodeId, Role> roles = {}) {
  SimConfig config;
  config.F = 2;
  config.t = 0;
  config.n = static_cast<int>(scripts.size());
  config.N = config.n;
  auto factory = [scripts = std::move(scripts),
                  roles = std::move(roles)](const ProtocolEnv& env) {
    Role role = Role::kContender;
    if (const auto it = roles.find(env.node_id); it != roles.end()) {
      role = it->second;
    }
    return std::make_unique<OutputScriptProtocol>(scripts.at(env.node_id),
                                                  role);
  };
  return Simulation(config, factory, std::make_unique<NoneAdversary>(),
                    std::make_unique<SimultaneousActivation>(config.n));
}

void drive(Simulation& sim, SyncVerifier& verifier, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    sim.step();
    verifier.observe(sim);
  }
}

TEST(SyncVerifierTest, CleanRunPasses) {
  // Node 1 synchronizes one round before node 0; their numbers agree in
  // every round where both output.
  auto sim = make_sim({{0, {kBot, kBot, 10, 11, 12}},
                       {1, {kBot, 9, 10, 11, 12}}});
  SyncVerifier verifier;
  drive(sim, verifier, 5);
  EXPECT_TRUE(verifier.report().ok());
  EXPECT_EQ(verifier.report().rounds_observed, 5);
}

TEST(SyncVerifierTest, DetectsSynchCommitViolation) {
  auto sim = make_sim({{0, {5, 6, kBot, kBot, kBot}}});
  SyncVerifier verifier;
  drive(sim, verifier, 5);
  EXPECT_GT(verifier.report().synch_commit_violations, 0);
  EXPECT_FALSE(verifier.report().ok());
}

TEST(SyncVerifierTest, DetectsCorrectnessViolation) {
  auto sim = make_sim({{0, {5, 6, 9, 10, 11}}});  // 6 -> 9 jumps
  SyncVerifier verifier;
  drive(sim, verifier, 5);
  EXPECT_EQ(verifier.report().correctness_violations, 1);
  EXPECT_FALSE(verifier.report().ok());
}

TEST(SyncVerifierTest, DetectsStuckOutput) {
  auto sim = make_sim({{0, {5, 5, 5}}});  // must increment each round
  SyncVerifier verifier;
  drive(sim, verifier, 3);
  EXPECT_GT(verifier.report().correctness_violations, 0);
}

TEST(SyncVerifierTest, DetectsAgreementViolation) {
  auto sim = make_sim({{0, {10, 11, 12}},
                       {1, {20, 21, 22}}});  // two numbering schemes
  SyncVerifier verifier;
  drive(sim, verifier, 3);
  EXPECT_EQ(verifier.report().agreement_violations, 3);
  EXPECT_FALSE(verifier.report().ok());
}

TEST(SyncVerifierTest, BottomNodesDoNotBreakAgreement) {
  auto sim = make_sim({{0, {10, 11, 12}},
                       {1, {kBot, kBot, kBot}}});
  SyncVerifier verifier;
  drive(sim, verifier, 3);
  EXPECT_EQ(verifier.report().agreement_violations, 0);
}

TEST(SyncVerifierTest, CountsSimultaneousLeaders) {
  auto sim = make_sim({{0, {10, 11, 12}}, {1, {10, 11, 12}}},
                      {{0, Role::kLeader}, {1, Role::kLeader}});
  SyncVerifier verifier;
  drive(sim, verifier, 3);
  EXPECT_EQ(verifier.report().max_simultaneous_leaders, 2);
}

TEST(SyncVerifierTest, AllowResyncToleratesRestart) {
  auto sim = make_sim({{0, {5, 6, kBot, kBot, 20, 21}}});
  VerifierConfig config;
  config.allow_resync = true;
  SyncVerifier verifier(config);
  drive(sim, verifier, 6);
  EXPECT_TRUE(verifier.report().ok());
  EXPECT_GT(verifier.report().resyncs_observed, 0);
}

TEST(SyncVerifierTest, StrictModeRejectsRestart) {
  auto sim = make_sim({{0, {5, 6, kBot, kBot, 20, 21}}});
  SyncVerifier verifier;
  drive(sim, verifier, 6);
  EXPECT_FALSE(verifier.report().ok());
}

}  // namespace
}  // namespace wsync
