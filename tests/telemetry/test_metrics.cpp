#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace wsync::telemetry {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter& counter =
      registry.counter("events_total", MetricClass::kDeterministic);
  EXPECT_EQ(counter.value(), 0);
  counter.add(3);
  counter.add(4);
  EXPECT_EQ(counter.value(), 7);
}

TEST(CounterTest, ReRegistrationReturnsTheSameCounter) {
  MetricsRegistry registry;
  registry.counter("events_total", MetricClass::kDeterministic).add(5);
  EXPECT_EQ(
      registry.counter("events_total", MetricClass::kDeterministic).value(),
      5);
}

TEST(GaugeTest, SetOverwrites) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("level", MetricClass::kTiming);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  gauge.set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
}

TEST(HistogramTest, BucketsByUpperBound) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram(
      "latency_millis", MetricClass::kTiming, {1.0, 10.0, 100.0});
  histogram.record(0.5);   // <= 1
  histogram.record(1.0);   // <= 1 (bounds are inclusive)
  histogram.record(7.0);   // <= 10
  histogram.record(99.0);  // <= 100
  histogram.record(500.0);  // overflow
  const std::vector<int64_t> expected = {2, 1, 1, 1};
  EXPECT_EQ(histogram.counts(), expected);
  EXPECT_EQ(histogram.total_count(), 5);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 7.0 + 99.0 + 500.0);
}

TEST(HistogramTest, RejectsBadBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(
      registry.histogram("empty_bounds", MetricClass::kTiming, {}),
      std::invalid_argument);
  EXPECT_THROW(registry.histogram("unsorted_bounds", MetricClass::kTiming,
                                  {2.0, 1.0}),
               std::invalid_argument);
}

TEST(RegistryTest, RejectsNonSnakeCaseNames) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter("CamelCase", MetricClass::kTiming),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("has space", MetricClass::kTiming),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("9starts_with_digit", MetricClass::kTiming),
               std::invalid_argument);
  EXPECT_THROW(registry.counter("", MetricClass::kTiming),
               std::invalid_argument);
  registry.counter("ok_name_2", MetricClass::kTiming);  // must not throw
}

TEST(RegistryTest, RejectsClassAndKindMismatch) {
  MetricsRegistry registry;
  registry.counter("mixed", MetricClass::kDeterministic);
  // Same name, different class: a metric cannot switch identity sections.
  EXPECT_THROW(registry.counter("mixed", MetricClass::kTiming),
               std::invalid_argument);
  // Same name, different kind: a counter cannot come back as a gauge.
  EXPECT_THROW(registry.gauge("mixed", MetricClass::kDeterministic),
               std::invalid_argument);
}

TEST(RegistryTest, ClassJsonFiltersByClass) {
  MetricsRegistry registry;
  registry.counter("det_total", MetricClass::kDeterministic).add(2);
  registry.counter("eng_total", MetricClass::kEngineDependent).add(3);
  registry.gauge("wall_millis", MetricClass::kTiming).set(1.5);

  const std::string det = registry.class_json(MetricClass::kDeterministic);
  EXPECT_NE(det.find("\"det_total\": 2"), std::string::npos);
  EXPECT_EQ(det.find("eng_total"), std::string::npos);
  EXPECT_EQ(det.find("wall_millis"), std::string::npos);

  const std::string eng = registry.class_json(MetricClass::kEngineDependent);
  EXPECT_NE(eng.find("\"eng_total\": 3"), std::string::npos);
  EXPECT_EQ(eng.find("det_total"), std::string::npos);
}

TEST(RegistryTest, JsonIsDeterministicallyOrdered) {
  // Registration order must not leak into the export: names render in
  // sorted order, so two runs that register in different orders still
  // export identical bytes.
  MetricsRegistry a;
  a.counter("zeta_total", MetricClass::kDeterministic).add(1);
  a.counter("alpha_total", MetricClass::kDeterministic).add(2);
  MetricsRegistry b;
  b.counter("alpha_total", MetricClass::kDeterministic).add(2);
  b.counter("zeta_total", MetricClass::kDeterministic).add(1);
  EXPECT_EQ(a.class_json(MetricClass::kDeterministic),
            b.class_json(MetricClass::kDeterministic));
}

TEST(RegistryTest, HistogramJsonCarriesBoundsCountsTotalSum) {
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("lat", MetricClass::kTiming, {1.0, 2.0});
  histogram.record(0.5);
  histogram.record(3.0);
  const std::string json = registry.class_json(MetricClass::kTiming);
  EXPECT_NE(json.find("\"bounds\": [1, 2]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\": [1, 0, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 3.5"), std::string::npos);
}

TEST(MetricClassTest, ToStringNamesAllClasses) {
  EXPECT_STREQ(to_string(MetricClass::kDeterministic), "deterministic");
  EXPECT_STREQ(to_string(MetricClass::kEngineDependent), "engine");
  EXPECT_STREQ(to_string(MetricClass::kTiming), "timing");
}

TEST(SnakeCaseTest, AcceptsAndRejects) {
  EXPECT_TRUE(is_snake_case("rounds_simulated_total"));
  EXPECT_TRUE(is_snake_case("x"));
  EXPECT_TRUE(is_snake_case("a1_b2"));
  EXPECT_FALSE(is_snake_case(""));
  EXPECT_FALSE(is_snake_case("Rounds"));
  EXPECT_FALSE(is_snake_case("_leading"));
  EXPECT_FALSE(is_snake_case("1digit"));
  EXPECT_FALSE(is_snake_case("kebab-case"));
}

TEST(JsonDoubleTest, IntegralValuesRenderWithoutExponent) {
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(42.0), "42");
  EXPECT_EQ(json_double(-3.0), "-3");
}

TEST(JsonDoubleTest, FractionsRoundTrip) {
  EXPECT_EQ(json_double(0.25), "0.25");
  const std::string rendered = json_double(0.1);
  EXPECT_DOUBLE_EQ(std::stod(rendered), 0.1);
}

}  // namespace
}  // namespace wsync::telemetry
