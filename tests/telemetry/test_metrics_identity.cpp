// Deterministic-metrics byte-identity wall.
//
// The "deterministic" section of the metrics document must be a pure
// function of (plan, seeds): byte-identical across worker counts, across
// the dense and sparse engines, and across one-shot vs checkpoint-resumed
// execution. The "engine" section is allowed to differ between engines
// (that is its definition) but must itself be worker-invariant per engine,
// with the dense engine reporting zero wake machinery. Timing metrics must
// never leak into either walled section.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/scenario/registry.h"
#include "src/service/checkpoint.h"
#include "src/service/run_metrics.h"
#include "src/service/streaming_sweep.h"
#include "src/telemetry/metrics.h"

namespace wsync {
namespace {

// A catalog slice that exercises both engine families: always-awake
// protocols under jamming (dense-equivalent paths) and the duty-cycled
// synchronizer (sparse wake-event machinery). Small enough for an
// integration wall at 2 seeds.
constexpr const char* kCatalogSlice =
    "^(single_frequency_band|sweep_jammer_narrowband|dutycycle_jamming)$";
constexpr int kSeeds = 2;

SweepPlan slice_plan(EngineMode engine) {
  const std::vector<const Scenario*> selected =
      ScenarioRegistry::matching(kCatalogSlice);
  SweepPlan plan = make_plan(selected, kSeeds);
  for (PlannedScenario& planned : plan.scenarios) {
    for (ExperimentPoint& point : planned.scenario.grid) {
      point.engine = engine;
    }
  }
  return plan;
}

/// Sink that discards everything: the wall reads the collector, not the
/// report stream.
class NullSink : public ChunkSink {
 public:
  void on_scenario_begin(size_t, const PlannedScenario&) override {}
  void on_chunk(size_t, size_t, const PointResult&, bool) override {}
  void on_scenario_end(size_t, const PlannedScenario&,
                       const std::vector<PointResult>&,
                       const std::vector<std::string>&) override {}
};

struct MetricsCapture {
  std::string deterministic;
  std::string engine;
};

MetricsCapture run_and_capture(const SweepPlan& plan, int workers,
                               CheckpointWriter* checkpoint = nullptr,
                               const CheckpointData* resume = nullptr) {
  ThreadPool pool(workers);
  telemetry::MetricsRegistry registry;
  RunMetricsCollector metrics(&registry);
  NullSink sink;
  StreamingSweepOptions options;
  options.metrics = &metrics;
  options.checkpoint = checkpoint;
  options.resume = resume;
  run_streaming_sweep(plan, pool, options, sink);
  return {metrics.deterministic_json(), metrics.engine_json()};
}

TEST(MetricsIdentityTest, DeterministicBlockIsWorkerAndEngineInvariant) {
  const SweepPlan dense = slice_plan(EngineMode::kDense);
  const SweepPlan sparse = slice_plan(EngineMode::kSparse);
  const MetricsCapture reference = run_and_capture(dense, /*workers=*/1);
  ASSERT_FALSE(reference.deterministic.empty());
  EXPECT_NE(reference.deterministic.find("rounds_simulated_total"),
            std::string::npos);

  EXPECT_EQ(run_and_capture(dense, /*workers=*/4).deterministic,
            reference.deterministic);
  EXPECT_EQ(run_and_capture(sparse, /*workers=*/1).deterministic,
            reference.deterministic);
  EXPECT_EQ(run_and_capture(sparse, /*workers=*/4).deterministic,
            reference.deterministic);
}

TEST(MetricsIdentityTest, EngineBlockIsWorkerInvariantPerEngine) {
  const SweepPlan dense = slice_plan(EngineMode::kDense);
  const SweepPlan sparse = slice_plan(EngineMode::kSparse);
  const MetricsCapture dense_1 = run_and_capture(dense, /*workers=*/1);
  const MetricsCapture sparse_1 = run_and_capture(sparse, /*workers=*/1);
  EXPECT_EQ(run_and_capture(dense, /*workers=*/4).engine, dense_1.engine);
  EXPECT_EQ(run_and_capture(sparse, /*workers=*/4).engine, sparse_1.engine);

  // The dense engine has no wake machinery: both counters must read 0.
  EXPECT_NE(dense_1.engine.find("\"wake_events_popped_total\": 0"),
            std::string::npos)
      << dense_1.engine;
  EXPECT_NE(dense_1.engine.find("\"fast_forwarded_rounds_total\": 0"),
            std::string::npos)
      << dense_1.engine;
  // The sparse slice includes duty-cycled nodes, so wake events must have
  // been popped (otherwise the wall is not exercising the machinery).
  EXPECT_EQ(sparse_1.engine.find("\"wake_events_popped_total\": 0"),
            std::string::npos)
      << sparse_1.engine;
}

TEST(MetricsIdentityTest, TimingMetricsNeverLeakIntoWalledSections) {
  const SweepPlan plan = slice_plan(EngineMode::kSparse);
  ThreadPool pool(2);
  telemetry::MetricsRegistry registry;
  RunMetricsCollector metrics(&registry);
  NullSink sink;
  StreamingSweepOptions options;
  options.metrics = &metrics;
  run_streaming_sweep(plan, pool, options, sink);
  // The sweep records a chunk-latency histogram; it must stay in the
  // timing class only.
  EXPECT_NE(registry.class_json(telemetry::MetricClass::kTiming)
                .find("chunk_latency_millis"),
            std::string::npos);
  EXPECT_EQ(metrics.deterministic_json().find("chunk_latency_millis"),
            std::string::npos);
  EXPECT_EQ(metrics.engine_json().find("chunk_latency_millis"),
            std::string::npos);
}

TEST(MetricsIdentityTest, ResumedRunAccumulatesTheOneShotBlocks) {
  const SweepPlan plan = slice_plan(EngineMode::kDense);
  const MetricsCapture one_shot = run_and_capture(plan, /*workers=*/2);

  const std::string path = ::testing::TempDir() + "metrics_identity_ckpt.txt";
  const uint64_t fingerprint = plan_fingerprint(plan);
  {
    CheckpointWriter writer(path, fingerprint, /*resume=*/false);
    run_and_capture(plan, /*workers=*/2, &writer);
  }
  CheckpointLoad load = load_checkpoint(path, fingerprint);
  ASSERT_TRUE(load.ok()) << load.error;
  ASSERT_EQ(load.chunks.size(), plan.chunk_count());

  // Full replay: zero chunks computed, identical metrics document.
  const MetricsCapture resumed =
      run_and_capture(plan, /*workers=*/4, nullptr, &load.chunks);
  EXPECT_EQ(resumed.deterministic, one_shot.deterministic);
  EXPECT_EQ(resumed.engine, one_shot.engine);

  // Partial replay — as if the first run was killed mid-catalog — must
  // accumulate the same blocks from a mix of replayed and recomputed
  // chunks.
  CheckpointData partial = load.chunks;
  partial.erase({"dutycycle_jamming", 0});
  partial.erase({"dutycycle_jamming", 1});
  const MetricsCapture mixed =
      run_and_capture(plan, /*workers=*/4, nullptr, &partial);
  EXPECT_EQ(mixed.deterministic, one_shot.deterministic);
  EXPECT_EQ(mixed.engine, one_shot.engine);
}

}  // namespace
}  // namespace wsync
