// Chrome-trace export wall: the streaming writer must always terminate a
// valid JSON array, the TelemetrySink must render every TraceSink callback
// with the Perfetto-required keys (name/ph/ts/pid/tid), and a full seeded
// engine run is pinned byte-for-byte by a golden file — identical under the
// dense and sparse engines, because a sink that allows_fast_forward() must
// never perturb a run that cannot fast-forward.
#include "src/telemetry/trace_writer.h"

#include <gtest/gtest.h>

#include <memory>
#include <regex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/adversary/basic.h"
#include "src/radio/engine.h"
#include "src/radio/trace.h"
#include "src/trapdoor/trapdoor.h"
#include "tests/golden/golden_compare.h"

namespace wsync::telemetry {
namespace {

using wsync::testing::compare_with_golden;

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Structural check that `text` is a Chrome trace: a JSON array with one
/// complete event object per line, each carrying the keys Perfetto needs.
/// (Full json.load validation runs in the Python CTest gates; this keeps
/// the C++ wall self-contained.)
void expect_chrome_trace_shape(const std::string& text) {
  const std::vector<std::string> lines = split_lines(text);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines.front(), "[");
  EXPECT_EQ(lines.back(), "]");
  const std::regex event_line(R"(^\{"name": ".*\},?$)");
  for (size_t i = 1; i + 1 < lines.size(); ++i) {
    EXPECT_TRUE(std::regex_search(lines[i], event_line)) << lines[i];
    EXPECT_NE(lines[i].find("\"ph\": \""), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find("\"pid\": "), std::string::npos) << lines[i];
    // Every line but the last is comma-terminated; the last is not.
    EXPECT_EQ(lines[i].back() == ',', i + 2 < lines.size()) << lines[i];
  }
}

TEST(ChromeTraceWriterTest, StreamsACommaSeparatedArray) {
  std::ostringstream out;
  ChromeTraceWriter writer(out);
  writer.write_event("{\"name\": \"a\"}");
  writer.write_event("{\"name\": \"b\"}");
  EXPECT_EQ(writer.events_written(), 2);
  writer.close();
  EXPECT_EQ(out.str(), "[\n{\"name\": \"a\"},\n{\"name\": \"b\"}\n]\n");
}

TEST(ChromeTraceWriterTest, EmptyTraceIsStillValidJson) {
  std::ostringstream out;
  { ChromeTraceWriter writer(out); }  // destructor closes
  EXPECT_EQ(out.str(), "[\n]\n");
}

TEST(ChromeTraceWriterTest, CloseIsIdempotentAndWriteAfterCloseThrows) {
  std::ostringstream out;
  ChromeTraceWriter writer(out);
  writer.close();
  writer.close();
  EXPECT_EQ(out.str(), "[\n]\n");
  EXPECT_THROW(writer.write_event("{}"), std::invalid_argument);
}

TEST(TelemetrySinkTest, RendersEveryCallbackWithPerfettoKeys) {
  std::ostringstream out;
  {
    ChromeTraceWriter writer(out);
    TelemetrySink sink(&writer);
    RoundTraceEvent round;
    round.round = 3;
    round.broadcast_weight = 1.5;
    round.active_nodes = 2;
    sink.on_round(round);
    sink.on_activation(4, 1);
    sink.on_delivery(DeliveryTraceEvent{5, 2, 0, 1});
    sink.on_synchronized(6, 1, 42);
    sink.on_crash(7, 0);
    sink.on_fast_forward(8, 20);
  }
  const std::string text = out.str();
  expect_chrome_trace_shape(text);
  // One metadata event (process_name) plus the six callbacks.
  EXPECT_NE(text.find("\"name\": \"process_name\", \"ph\": \"M\""),
            std::string::npos);
  EXPECT_NE(text.find("\"name\": \"round\", \"ph\": \"C\", \"ts\": 3"),
            std::string::npos);
  EXPECT_NE(text.find("\"broadcast_weight\": 1.5"), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"activate\", \"ph\": \"i\", \"ts\": 4"),
            std::string::npos);
  EXPECT_NE(text.find("\"name\": \"delivery\", \"ph\": \"i\", \"ts\": 5"),
            std::string::npos);
  EXPECT_NE(text.find("\"name\": \"sync\", \"ph\": \"i\", \"ts\": 6"),
            std::string::npos);
  EXPECT_NE(text.find("\"number\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"crash\", \"ph\": \"i\", \"ts\": 7"),
            std::string::npos);
  // The fast-forward span covers rounds [8, 20): a complete event with a
  // duration, so sparse skips stay visible on the timeline.
  EXPECT_NE(text.find("\"name\": \"fast_forward\", \"ph\": \"X\", "
                      "\"ts\": 8"),
            std::string::npos);
  EXPECT_NE(text.find("\"dur\": 12"), std::string::npos);
}

TEST(TelemetrySinkTest, SinkAllowsFastForward) {
  std::ostringstream out;
  ChromeTraceWriter writer(out);
  const TelemetrySink sink(&writer);
  EXPECT_TRUE(sink.allows_fast_forward());
}

TEST(TelemetrySinkTest, FilterSelectsByEventName) {
  std::ostringstream out;
  {
    ChromeTraceWriter writer(out);
    TelemetrySink sink(&writer, "^(sync|crash)$");
    RoundTraceEvent round;
    round.round = 1;
    sink.on_round(round);
    sink.on_synchronized(2, 0, 7);
    sink.on_crash(3, 1);
  }
  const std::string text = out.str();
  expect_chrome_trace_shape(text);
  EXPECT_EQ(text.find("\"name\": \"round\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"sync\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"crash\""), std::string::npos);
}

TEST(TelemetrySinkTest, BadFilterThrows) {
  std::ostringstream out;
  ChromeTraceWriter writer(out);
  EXPECT_THROW(TelemetrySink(&writer, "(["), std::regex_error);
}

TEST(TelemetrySinkTest, ReplayedRunsGetFreshPidTracks) {
  std::ostringstream out;
  {
    ChromeTraceWriter writer(out);
    TelemetrySink sink(&writer);
    sink.on_activation(5, 0);  // run 0 ends at ts 5
    sink.on_activation(2, 0);  // time runs backwards: a replayed run
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\": \"wsync run 0\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"wsync run 1\""), std::string::npos);
  EXPECT_NE(text.find("\"ts\": 2, \"pid\": 1"), std::string::npos);
}

/// A full seeded engine run rendered through the sink: Trapdoor under a
/// random jammer with a mid-run crash, so the trace exercises round
/// counters, activations, deliveries, syncs and the crash instant.
std::string render_traced_run(EngineMode engine) {
  constexpr uint64_t kSeed = 0xE17;
  constexpr RoundId kRounds = 32;
  std::ostringstream out;
  ChromeTraceWriter writer(out);
  TelemetrySink sink(&writer);
  SimConfig config;
  config.F = 4;
  config.t = 1;
  config.N = 8;
  config.n = 3;
  config.seed = kSeed;
  config.engine = engine;
  Simulation sim(config, TrapdoorProtocol::factory(),
                 std::make_unique<RandomSubsetAdversary>(1),
                 std::make_unique<SequentialActivation>(3, 2), &sink);
  for (RoundId r = 0; r < kRounds; ++r) {
    if (r == 16) sim.crash(2);
    sim.step();
  }
  writer.close();
  return out.str();
}

TEST(TelemetrySinkTest, GoldenSeededRun) {
  const std::string dense = render_traced_run(EngineMode::kDense);
  // A jammed run cannot fast-forward, so the sparse engine must replay the
  // exact same event stream even though the sink permits skipping.
  ASSERT_EQ(dense, render_traced_run(EngineMode::kSparse));
  expect_chrome_trace_shape(dense);
  compare_with_golden("telemetry_trace_run.golden", dense);
}

}  // namespace
}  // namespace wsync::telemetry
