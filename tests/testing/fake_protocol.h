// A scriptable protocol for engine-level tests: plays back a fixed cyclic
// sequence of actions and records everything it receives.
#ifndef WSYNC_TESTS_TESTING_FAKE_PROTOCOL_H_
#define WSYNC_TESTS_TESTING_FAKE_PROTOCOL_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/protocol/protocol.h"

namespace wsync::testing {

class FakeProtocol final : public Protocol {
 public:
  struct Script {
    /// Actions played in order, cycling; empty means "listen on 0".
    std::vector<RoundAction> actions;
    /// Output a number (equal to the node's age) from this age on;
    /// negative = always bottom.
    int64_t sync_at_age = -1;
    /// Role to report.
    Role role = Role::kContender;
    /// Planned broadcast probability to report (for weight tests).
    double weight = 0.0;
  };

  FakeProtocol(const ProtocolEnv& env, Script script)
      : env_(env), script_(std::move(script)) {}

  void on_activate(Rng& /*rng*/) override { activated_ = true; }

  RoundAction act(Rng& /*rng*/) override {
    ++acts_;
    if (script_.actions.empty()) return RoundAction::listen(0);
    const RoundAction& action =
        script_.actions[static_cast<size_t>(step_ %
                                            script_.actions.size())];
    ++step_;
    return action;
  }

  void on_round_end(const std::optional<Message>& received,
                    Rng& /*rng*/) override {
    receptions.push_back(received);
    ++age_;
  }

  SyncOutput output() const override {
    if (script_.sync_at_age >= 0 && age_ >= script_.sync_at_age) {
      return SyncOutput{age_};
    }
    return SyncOutput{};
  }

  Role role() const override { return script_.role; }
  double broadcast_probability() const override { return script_.weight; }

  const ProtocolEnv& env() const { return env_; }
  bool activated() const { return activated_; }
  int64_t acts() const { return acts_; }
  int64_t age() const { return age_; }

  /// All receptions, one entry per completed round.
  std::vector<std::optional<Message>> receptions;

  /// Builds a factory that scripts each node by id (missing ids get the
  /// default script) and exposes the created instances through `registry`.
  static ProtocolFactory factory(
      std::map<NodeId, Script> scripts,
      std::map<NodeId, FakeProtocol*>* registry) {
    return [scripts = std::move(scripts), registry](const ProtocolEnv& env) {
      Script script;
      if (const auto it = scripts.find(env.node_id); it != scripts.end()) {
        script = it->second;
      }
      auto protocol = std::make_unique<FakeProtocol>(env, std::move(script));
      if (registry != nullptr) (*registry)[env.node_id] = protocol.get();
      return protocol;
    };
  }

 private:
  ProtocolEnv env_;
  Script script_;
  bool activated_ = false;
  int64_t acts_ = 0;
  int64_t age_ = 0;
  size_t step_ = 0;
};

/// Convenience payload for scripted broadcasts.
inline Payload test_payload(uint64_t tag) {
  DataMsg msg;
  msg.tag = tag;
  return msg;
}

}  // namespace wsync::testing

#endif  // WSYNC_TESTS_TESTING_FAKE_PROTOCOL_H_
