// Shared Simulation-construction boilerplate for engine tests.
//
// Most engine tests build the same thing: a SimConfig (F, t, n, seed), a
// protocol factory, an adversary, an activation schedule, maybe a trace
// sink. SimBuilder collects those choices fluently; build() produces a
// Simulation, and pair() produces the dense/sparse twin the differential
// tests diff against each other — one spec, two engines, same seed.
//
// Adversaries and activation schedules are captured as producers (not
// instances) because both are stateful: each build() call gets a fresh
// one, which is what makes pair() runs independent and bit-comparable.
#ifndef WSYNC_TESTS_TESTING_SIM_BUILDER_H_
#define WSYNC_TESTS_TESTING_SIM_BUILDER_H_

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "src/adversary/basic.h"
#include "src/radio/activation.h"
#include "src/radio/engine.h"
#include "tests/testing/fake_protocol.h"

namespace wsync {
namespace testing {

/// A dense/sparse twin built from one spec; see SimBuilder::pair().
struct EnginePair {
  std::unique_ptr<Simulation> dense;
  std::unique_ptr<Simulation> sparse;

  /// Steps both engines one round and checks the reports match; returns the
  /// dense report (== the sparse one when the expectation holds).
  RoundReport step() {
    const RoundReport a = dense->step();
    const RoundReport b = sparse->step();
    EXPECT_EQ(a.round, b.round);
    EXPECT_EQ(a.activations, b.activations) << "round " << a.round;
    EXPECT_EQ(a.deliveries, b.deliveries) << "round " << a.round;
    EXPECT_EQ(a.broadcasters, b.broadcasters) << "round " << a.round;
    EXPECT_EQ(a.absences, b.absences) << "round " << a.round;
    // Bit-identical, not approximately equal: both engines must sum the
    // same weights in the same node order.
    EXPECT_EQ(a.broadcast_weight, b.broadcast_weight) << "round " << a.round;
    return a;
  }

  /// Checks every observer the engines expose agrees: per-node visible
  /// state, ledger entries, and the aggregate counters.
  void expect_same_state() const {
    ASSERT_EQ(dense->round(), sparse->round());
    EXPECT_EQ(dense->active_count(), sparse->active_count());
    EXPECT_EQ(dense->crashed_count(), sparse->crashed_count());
    EXPECT_EQ(dense->activated_total(), sparse->activated_total());
    EXPECT_EQ(dense->all_synced(), sparse->all_synced());
    EXPECT_EQ(dense->energy().totals(), sparse->energy().totals());
    for (NodeId id = 0; id < dense->config().n; ++id) {
      EXPECT_EQ(dense->is_active(id), sparse->is_active(id)) << "node " << id;
      EXPECT_EQ(dense->is_crashed(id), sparse->is_crashed(id))
          << "node " << id;
      EXPECT_EQ(dense->activation_round(id), sparse->activation_round(id))
          << "node " << id;
      EXPECT_EQ(dense->sync_round(id), sparse->sync_round(id))
          << "node " << id;
      EXPECT_EQ(dense->output(id), sparse->output(id)) << "node " << id;
      EXPECT_EQ(dense->role(id), sparse->role(id)) << "node " << id;
      EXPECT_EQ(dense->energy().node(id), sparse->energy().node(id))
          << "node " << id;
    }
  }
};

class SimBuilder {
 public:
  /// Starts from the parameters every test sets; N defaults to n.
  SimBuilder(int F, int t, int n) {
    config_.F = F;
    config_.t = t;
    config_.N = n;
    config_.n = n;
  }

  SimBuilder& N(int64_t N) {
    config_.N = N;
    return *this;
  }
  SimBuilder& seed(uint64_t seed) {
    config_.seed = seed;
    return *this;
  }
  SimBuilder& engine(EngineMode mode) {
    config_.engine = mode;
    return *this;
  }
  SimBuilder& protocol(ProtocolFactory factory) {
    factory_ = std::move(factory);
    return *this;
  }
  /// Shorthand for the scripted FakeProtocol used by the radio tests.
  SimBuilder& fake(std::map<NodeId, FakeProtocol::Script> scripts,
                   std::map<NodeId, FakeProtocol*>* registry = nullptr) {
    factory_ = FakeProtocol::factory(std::move(scripts), registry);
    return *this;
  }
  /// Installs `AdversaryT(args...)`, rebuilt fresh per build() call.
  template <typename AdversaryT, typename... Args>
  SimBuilder& adversary(Args... args) {
    make_adversary_ = [args...] {
      return std::make_unique<AdversaryT>(args...);
    };
    return *this;
  }
  SimBuilder& adversary(std::function<std::unique_ptr<Adversary>()> make) {
    make_adversary_ = std::move(make);
    return *this;
  }
  /// Installs `ScheduleT(args...)`, rebuilt fresh per build() call.
  template <typename ScheduleT, typename... Args>
  SimBuilder& activation(Args... args) {
    make_activation_ = [args...] {
      return std::make_unique<ScheduleT>(args...);
    };
    return *this;
  }
  SimBuilder& trace(TraceSink* sink) {
    trace_ = sink;
    return *this;
  }

  const SimConfig& config() const { return config_; }

  /// Builds with the spec's engine mode (kAuto unless engine() was called).
  std::unique_ptr<Simulation> build() const { return build(config_.engine); }

  std::unique_ptr<Simulation> build(EngineMode mode) const {
    SimConfig config = config_;
    config.engine = mode;
    return std::make_unique<Simulation>(
        config,
        factory_ ? factory_ : FakeProtocol::factory({}, nullptr),
        make_adversary_ ? make_adversary_()
                        : std::make_unique<NoneAdversary>(),
        make_activation_
            ? make_activation_()
            : std::make_unique<SimultaneousActivation>(config.n),
        trace_);
  }

  /// The differential one-liner: the same spec under both engines.
  EnginePair pair() const {
    return {build(EngineMode::kDense), build(EngineMode::kSparse)};
  }

 private:
  SimConfig config_;
  ProtocolFactory factory_;
  std::function<std::unique_ptr<Adversary>()> make_adversary_;
  std::function<std::unique_ptr<ActivationSchedule>()> make_activation_;
  TraceSink* trace_ = nullptr;
};

}  // namespace testing
}  // namespace wsync

#endif  // WSYNC_TESTS_TESTING_SIM_BUILDER_H_
