#include "src/trapdoor/schedule.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wsync {
namespace {

TEST(TrapdoorScheduleTest, EffectiveBandIsMinF2t) {
  EXPECT_EQ(TrapdoorSchedule::effective_band(16, 4, true), 8);
  EXPECT_EQ(TrapdoorSchedule::effective_band(16, 12, true), 16);
  EXPECT_EQ(TrapdoorSchedule::effective_band(16, 8, true), 16);
  EXPECT_EQ(TrapdoorSchedule::effective_band(16, 0, true), 1);
  EXPECT_EQ(TrapdoorSchedule::effective_band(16, 4, false), 16);
  EXPECT_THROW(TrapdoorSchedule::effective_band(4, 4, true),
               std::invalid_argument);
}

TEST(TrapdoorScheduleTest, EffectiveBandAlwaysExceedsT) {
  for (int F = 2; F <= 64; F *= 2) {
    for (int t = 0; t < F; ++t) {
      EXPECT_GT(TrapdoorSchedule::effective_band(F, t, true), t)
          << "F=" << F << " t=" << t;
    }
  }
}

TEST(TrapdoorScheduleTest, HasLgNEpochs) {
  const auto schedule = TrapdoorSchedule::standard(16, 4, 1024);
  EXPECT_EQ(schedule.num_epochs(), 10);
  EXPECT_EQ(schedule.lg_n(), 10);
  EXPECT_EQ(schedule.n_pow2(), 1024);
}

TEST(TrapdoorScheduleTest, NonPowerOfTwoNRoundsUp) {
  const auto schedule = TrapdoorSchedule::standard(16, 4, 1000);
  EXPECT_EQ(schedule.num_epochs(), 10);
  EXPECT_EQ(schedule.n_pow2(), 1024);
}

TEST(TrapdoorScheduleTest, Figure1BroadcastProbabilities) {
  // Figure 1: probability 2^e / (2N), final epoch 1/2.
  const int64_t N = 256;  // lgN = 8
  const auto schedule = TrapdoorSchedule::standard(8, 2, N);
  for (int e = 1; e <= 8; ++e) {
    const double expected = std::min(0.5, std::ldexp(1.0, e) / (2.0 * 256));
    EXPECT_DOUBLE_EQ(schedule.epoch(e - 1).broadcast_prob, expected)
        << "epoch " << e;
  }
  EXPECT_DOUBLE_EQ(schedule.epoch(0).broadcast_prob, 1.0 / 256);
  EXPECT_DOUBLE_EQ(schedule.epoch(7).broadcast_prob, 0.5);
}

TEST(TrapdoorScheduleTest, Figure1EpochLengths) {
  // l_E = Theta(F'/(F'-t) logN) for all but the last epoch; the last is
  // Theta(F'^2/(F'-t) logN), i.e. F' times longer.
  TrapdoorConfig config;
  config.epoch_constant = 4.0;
  config.final_epoch_constant = 4.0;
  const auto schedule = TrapdoorSchedule::standard(16, 8, 1024, config);
  // F' = 16, F'-t = 8, lgN = 10 -> epoch = ceil(4*16*10/8) = 80.
  EXPECT_EQ(schedule.epoch(0).length, 80);
  for (int e = 0; e + 1 < schedule.num_epochs(); ++e) {
    EXPECT_EQ(schedule.epoch(e).length, schedule.epoch(0).length);
  }
  // final = ceil(4*16*16*10/8) = 1280 = F' * 80.
  EXPECT_EQ(schedule.epoch(schedule.num_epochs() - 1).length, 1280);
}

TEST(TrapdoorScheduleTest, TotalRoundsIsSumOfEpochs) {
  const auto schedule = TrapdoorSchedule::standard(8, 3, 64);
  int64_t total = 0;
  for (int e = 0; e < schedule.num_epochs(); ++e) {
    total += schedule.epoch(e).length;
  }
  EXPECT_EQ(schedule.total_rounds(), total);
}

TEST(TrapdoorScheduleTest, PositionWalksEpochs) {
  const auto schedule = TrapdoorSchedule::standard(8, 2, 16);
  int64_t age = 0;
  for (int e = 0; e < schedule.num_epochs(); ++e) {
    for (int64_t r = 0; r < schedule.epoch(e).length; ++r, ++age) {
      const auto pos = schedule.position(age);
      EXPECT_FALSE(pos.finished);
      EXPECT_EQ(pos.epoch, e) << "age " << age;
      EXPECT_EQ(pos.round_in_epoch, r);
    }
  }
  EXPECT_TRUE(schedule.position(age).finished);
  EXPECT_TRUE(schedule.position(age + 1000).finished);
}

TEST(TrapdoorScheduleTest, BroadcastProbMonotoneNondecreasing) {
  const auto schedule = TrapdoorSchedule::standard(16, 4, 4096);
  double prev = 0.0;
  for (int64_t age = 0; age < schedule.total_rounds(); ++age) {
    const double p = schedule.broadcast_prob_at(age);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 0.5);
    prev = p;
  }
  EXPECT_DOUBLE_EQ(schedule.broadcast_prob_at(schedule.total_rounds()), 0.0);
}

TEST(TrapdoorScheduleTest, DegenerateCases) {
  // N = 1: a single epoch with probability 1/2 (clamped).
  const auto schedule = TrapdoorSchedule::standard(4, 1, 1);
  EXPECT_EQ(schedule.num_epochs(), 1);
  EXPECT_DOUBLE_EQ(schedule.epoch(0).broadcast_prob, 0.5);
  // F = 1, t = 0.
  const auto single = TrapdoorSchedule::standard(1, 0, 16);
  EXPECT_EQ(single.f_prime(), 1);
  EXPECT_GT(single.total_rounds(), 0);
}

TEST(TrapdoorScheduleTest, CustomLengthsRespected) {
  const TrapdoorSchedule schedule(4, 16, 100, 999);
  EXPECT_EQ(schedule.num_epochs(), 4);
  EXPECT_EQ(schedule.epoch(0).length, 100);
  EXPECT_EQ(schedule.epoch(3).length, 999);
  EXPECT_EQ(schedule.total_rounds(), 3 * 100 + 999);
}

TEST(TrapdoorScheduleTest, TighterDisruptionMeansLongerEpochs) {
  // As t -> F, F'/(F'-t) blows up, so epochs get longer.
  const auto loose = TrapdoorSchedule::standard(16, 4, 256);
  const auto tight = TrapdoorSchedule::standard(16, 14, 256);
  EXPECT_GT(tight.epoch(0).length, loose.epoch(0).length);
}

TEST(TrapdoorScheduleTest, ValidatesArguments) {
  EXPECT_THROW(TrapdoorSchedule::standard(4, 1, 0), std::invalid_argument);
  EXPECT_THROW(TrapdoorSchedule(0, 4, 1, 1), std::invalid_argument);
  EXPECT_THROW(TrapdoorSchedule(4, 4, 0, 1), std::invalid_argument);
  TrapdoorConfig bad;
  bad.epoch_constant = 0.0;
  EXPECT_THROW(TrapdoorSchedule::standard(4, 1, 8, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace wsync
