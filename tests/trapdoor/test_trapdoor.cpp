#include "src/trapdoor/trapdoor.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/adversary/basic.h"
#include "src/radio/engine.h"

namespace wsync {
namespace {

ProtocolEnv make_env(int F, int t, int64_t N, uint64_t uid) {
  ProtocolEnv env;
  env.F = F;
  env.t = t;
  env.N = N;
  env.uid = uid;
  env.node_id = 0;
  return env;
}

Message contender_message(int64_t age, uint64_t uid) {
  Message m;
  m.sender = 1;
  m.frequency = 0;
  ContenderMsg msg;
  msg.ts = Timestamp{age, uid};
  m.payload = msg;
  return m;
}

Message leader_message(uint64_t uid, int64_t number) {
  Message m;
  m.sender = 1;
  m.frequency = 0;
  LeaderMsg msg;
  msg.leader_uid = uid;
  msg.round_number = number;
  m.payload = msg;
  return m;
}

TEST(TrapdoorProtocolTest, StartsAsContenderWithBottomOutput) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(1);
  p.on_activate(rng);
  EXPECT_EQ(p.role(), Role::kContender);
  EXPECT_TRUE(p.output().is_bottom());
  EXPECT_EQ(p.age(), 0);
  EXPECT_EQ(p.current_epoch(), 1);
}

TEST(TrapdoorProtocolTest, ActStaysWithinFPrime) {
  TrapdoorProtocol p(make_env(16, 2, 64, 42));  // F' = 4
  Rng rng(2);
  p.on_activate(rng);
  for (int i = 0; i < 500; ++i) {
    const RoundAction action = p.act(rng);
    EXPECT_GE(action.frequency, 0);
    EXPECT_LT(action.frequency, 4);
    p.on_round_end(std::nullopt, rng);
  }
}

TEST(TrapdoorProtocolTest, LargerTimestampKnocksOut) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(3);
  p.on_activate(rng);
  p.act(rng);
  // Sender active for 100 rounds (we are at age 0): larger timestamp.
  p.on_round_end(contender_message(100, 7), rng);
  EXPECT_EQ(p.role(), Role::kKnockedOut);
  EXPECT_TRUE(p.output().is_bottom());
}

TEST(TrapdoorProtocolTest, SmallerTimestampIsIgnored) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(4);
  p.on_activate(rng);
  for (int i = 0; i < 10; ++i) {
    p.act(rng);
    p.on_round_end(std::nullopt, rng);
  }
  p.act(rng);
  p.on_round_end(contender_message(2, 7), rng);  // our age is 10 > 2
  EXPECT_EQ(p.role(), Role::kContender);
}

TEST(TrapdoorProtocolTest, EqualAgeUidBreaksTie) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(5);
  p.on_activate(rng);
  p.act(rng);
  p.on_round_end(contender_message(0, 41), rng);  // smaller uid: ignored
  EXPECT_EQ(p.role(), Role::kContender);
  p.act(rng);
  p.on_round_end(contender_message(1, 43), rng);  // equal age now 1, bigger uid
  EXPECT_EQ(p.role(), Role::kKnockedOut);
}

TEST(TrapdoorProtocolTest, KnockedOutNodeKeepsListening) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(6);
  p.on_activate(rng);
  p.act(rng);
  p.on_round_end(contender_message(100, 7), rng);
  ASSERT_EQ(p.role(), Role::kKnockedOut);
  for (int i = 0; i < 100; ++i) {
    const RoundAction action = p.act(rng);
    EXPECT_FALSE(action.broadcast);
    EXPECT_LT(action.frequency, 4);  // F' = 4
    p.on_round_end(std::nullopt, rng);
  }
  EXPECT_DOUBLE_EQ(p.broadcast_probability(), 0.0);
}

TEST(TrapdoorProtocolTest, SurvivorBecomesLeaderAndCountsRounds) {
  const ProtocolEnv env = make_env(2, 0, 2, 42);
  TrapdoorProtocol p(env);
  Rng rng(7);
  p.on_activate(rng);
  const int64_t total = p.schedule().total_rounds();
  for (int64_t i = 0; i < total; ++i) {
    EXPECT_EQ(p.role(), Role::kContender) << "round " << i;
    p.act(rng);
    p.on_round_end(std::nullopt, rng);
  }
  EXPECT_EQ(p.role(), Role::kLeader);
  ASSERT_TRUE(p.output().has_number());
  const int64_t first = p.output().value;
  // Correctness: output increments every subsequent round.
  for (int i = 1; i <= 5; ++i) {
    p.act(rng);
    p.on_round_end(std::nullopt, rng);
    EXPECT_EQ(p.output().value, first + i);
  }
}

TEST(TrapdoorProtocolTest, LeaderMessageCarriesNextOutput) {
  const ProtocolEnv env = make_env(2, 0, 2, 42);
  TrapdoorProtocol p(env);
  Rng rng(8);
  p.on_activate(rng);
  while (p.role() != Role::kLeader) {
    p.act(rng);
    p.on_round_end(std::nullopt, rng);
  }
  // Find a broadcasting round and check the number it carries: it must be
  // the leader's output at the END of that round.
  for (int tries = 0; tries < 1000; ++tries) {
    const RoundAction action = p.act(rng);
    if (action.broadcast) {
      const auto& msg = std::get<LeaderMsg>(*action.payload);
      p.on_round_end(std::nullopt, rng);
      EXPECT_EQ(msg.round_number, p.output().value);
      return;
    }
    p.on_round_end(std::nullopt, rng);
  }
  FAIL() << "leader never broadcast in 1000 rounds";
}

TEST(TrapdoorProtocolTest, AdoptsLeaderNumbering) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(9);
  p.on_activate(rng);
  p.act(rng);
  p.on_round_end(leader_message(7, 1234), rng);
  EXPECT_EQ(p.role(), Role::kSynced);
  EXPECT_EQ(p.output().value, 1234);
  EXPECT_EQ(p.adopted_leader_uid(), 7u);
  // Increments thereafter.
  p.act(rng);
  p.on_round_end(std::nullopt, rng);
  EXPECT_EQ(p.output().value, 1235);
}

TEST(TrapdoorProtocolTest, ReadoptionFromSameLeaderKeepsAgreement) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(10);
  p.on_activate(rng);
  p.act(rng);
  p.on_round_end(leader_message(7, 100), rng);
  EXPECT_EQ(p.output().value, 100);
  // Hearing the leader again two rounds later: numbers must stay aligned.
  p.act(rng);
  p.on_round_end(std::nullopt, rng);
  EXPECT_EQ(p.output().value, 101);
  p.act(rng);
  p.on_round_end(leader_message(7, 102), rng);
  EXPECT_EQ(p.output().value, 102);
}

TEST(TrapdoorProtocolTest, KnockedOutStillAdoptsLeader) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(11);
  p.on_activate(rng);
  p.act(rng);
  p.on_round_end(contender_message(50, 9), rng);
  ASSERT_EQ(p.role(), Role::kKnockedOut);
  p.act(rng);
  p.on_round_end(leader_message(9, 77), rng);
  EXPECT_EQ(p.role(), Role::kSynced);
  EXPECT_EQ(p.output().value, 77);
}

TEST(TrapdoorProtocolTest, SyncCommitNeverRegresses) {
  TrapdoorProtocol p(make_env(8, 2, 64, 42));
  Rng rng(12);
  p.on_activate(rng);
  p.act(rng);
  p.on_round_end(leader_message(9, 5), rng);
  for (int i = 0; i < 200; ++i) {
    p.act(rng);
    // Hearing contenders after synchronizing must not reset the output.
    p.on_round_end(contender_message(1000 + i, 999), rng);
    EXPECT_TRUE(p.output().has_number());
  }
}

TEST(TrapdoorProtocolTest, BroadcastProbabilityTracksSchedule) {
  TrapdoorProtocol p(make_env(8, 2, 256, 42));
  Rng rng(13);
  p.on_activate(rng);
  const auto& schedule = p.schedule();
  for (int64_t age = 0; age < schedule.total_rounds(); ++age) {
    EXPECT_DOUBLE_EQ(p.broadcast_probability(),
                     schedule.broadcast_prob_at(age));
    p.act(rng);
    p.on_round_end(std::nullopt, rng);
  }
  EXPECT_DOUBLE_EQ(p.broadcast_probability(), 0.5);  // leader now
}

TEST(TrapdoorProtocolTest, ContenderBroadcastsCarryTimestamp) {
  TrapdoorProtocol p(make_env(4, 1, 4, 42));  // high probs, small N
  Rng rng(14);
  p.on_activate(rng);
  bool saw_broadcast = false;
  for (int i = 0; i < 200 && p.role() == Role::kContender; ++i) {
    const RoundAction action = p.act(rng);
    if (action.broadcast) {
      const auto& msg = std::get<ContenderMsg>(*action.payload);
      EXPECT_EQ(msg.ts.age, p.age());
      EXPECT_EQ(msg.ts.uid, 42u);
      saw_broadcast = true;
    }
    p.on_round_end(std::nullopt, rng);
  }
  EXPECT_TRUE(saw_broadcast);
}

}  // namespace
}  // namespace wsync
