#include "src/unslotted/unslotted.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/adversary/basic.h"
#include "src/samaritan/good_samaritan.h"
#include "src/trapdoor/trapdoor.h"
#include "tests/testing/fake_protocol.h"

namespace wsync {
namespace {

using testing::FakeProtocol;
using testing::test_payload;

UnslottedConfig basic_config(int F, int t, int n, int ticks_per_slot = 2,
                             uint64_t seed = 1) {
  UnslottedConfig config;
  config.F = F;
  config.t = t;
  config.N = n;
  config.n = n;
  config.ticks_per_slot = ticks_per_slot;
  config.seed = seed;
  return config;
}

TEST(UnslottedTest, ValidatesConfig) {
  auto make = [](UnslottedConfig config) {
    return UnslottedSimulation(config, FakeProtocol::factory({}, nullptr),
                               std::make_unique<NoneAdversary>(),
                               std::make_unique<SimultaneousActivation>(
                                   config.n));
  };
  EXPECT_THROW(make(basic_config(4, 4, 2)), std::invalid_argument);
  UnslottedConfig bad = basic_config(4, 1, 2);
  bad.ticks_per_slot = 0;
  EXPECT_THROW(make(bad), std::invalid_argument);
}

TEST(UnslottedTest, AlignedNodesBehaveLikeSlotted) {
  // With ticks_per_slot = 1 every node is aligned and the semantics match
  // the slotted engine: a sole broadcaster reaches a listener.
  std::map<NodeId, FakeProtocol::Script> scripts;
  scripts[0].actions = {RoundAction::send(2, test_payload(7))};
  scripts[1].actions = {RoundAction::listen(2)};
  std::map<NodeId, FakeProtocol*> nodes;
  UnslottedSimulation sim(basic_config(4, 0, 2, 1),
                          FakeProtocol::factory(scripts, &nodes),
                          std::make_unique<NoneAdversary>(),
                          std::make_unique<SimultaneousActivation>(2));
  sim.tick();  // round 0 runs...
  sim.tick();  // ...and closes at the next boundary
  ASSERT_FALSE(nodes[1]->receptions.empty());
  ASSERT_TRUE(nodes[1]->receptions[0].has_value());
  EXPECT_EQ(std::get<DataMsg>(nodes[1]->receptions[0]->payload).tag, 7u);
}

TEST(UnslottedTest, PhaseShiftedListenerStillHears) {
  // Seeds give nodes random phases in {0, 1}; a constant broadcaster is
  // heard by a constant listener regardless of their relative phase,
  // because transmissions repeat across the whole logical round.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::map<NodeId, FakeProtocol::Script> scripts;
    scripts[0].actions = {RoundAction::send(1, test_payload(9))};
    scripts[1].actions = {RoundAction::listen(1)};
    std::map<NodeId, FakeProtocol*> nodes;
    UnslottedSimulation sim(basic_config(4, 0, 2, 2, seed),
                            FakeProtocol::factory(scripts, &nodes),
                            std::make_unique<NoneAdversary>(),
                            std::make_unique<SimultaneousActivation>(2));
    for (int i = 0; i < 8; ++i) sim.tick();
    int heard = 0;
    for (const auto& r : nodes[1]->receptions) {
      if (r.has_value()) ++heard;
    }
    EXPECT_GT(heard, 0) << "seed " << seed << " phases " << sim.phase(0)
                        << "/" << sim.phase(1);
  }
}

TEST(UnslottedTest, PerTickDisruptionBlocks) {
  std::map<NodeId, FakeProtocol::Script> scripts;
  scripts[0].actions = {RoundAction::send(0, test_payload(1))};
  scripts[1].actions = {RoundAction::listen(0)};
  std::map<NodeId, FakeProtocol*> nodes;
  UnslottedSimulation sim(basic_config(4, 1, 2, 2),
                          FakeProtocol::factory(scripts, &nodes),
                          std::make_unique<FixedSubsetAdversary>(1),
                          std::make_unique<SimultaneousActivation>(2));
  for (int i = 0; i < 12; ++i) sim.tick();
  for (const auto& r : nodes[1]->receptions) {
    EXPECT_FALSE(r.has_value());
  }
}

TEST(UnslottedTest, PhasesAreAssignedWithinSlot) {
  UnslottedSimulation sim(basic_config(4, 0, 16, 4),
                          FakeProtocol::factory({}, nullptr),
                          std::make_unique<NoneAdversary>(),
                          std::make_unique<SimultaneousActivation>(16));
  sim.tick();
  std::set<int> phases;
  for (NodeId id = 0; id < 16; ++id) {
    EXPECT_GE(sim.phase(id), 0);
    EXPECT_LT(sim.phase(id), 4);
    phases.insert(sim.phase(id));
  }
  EXPECT_GT(phases.size(), 1u);  // not all aligned
}

TEST(UnslottedTest, TrapdoorSynchronizesUnslotted) {
  // The Section 8 claim: the slotted protocol carries over at a constant
  // multiplicative cost. Trapdoor instances with random phases must still
  // elect a unique leader and synchronize.
  UnslottedConfig config = basic_config(8, 2, 6, 2, 99);
  config.N = 16;
  UnslottedSimulation sim(config, TrapdoorProtocol::factory(),
                          std::make_unique<RandomSubsetAdversary>(2),
                          std::make_unique<SimultaneousActivation>(6));
  const auto result = sim.run_until_synced(4000000);
  ASSERT_TRUE(result.synced);
  int leaders = 0;
  for (NodeId id = 0; id < 6; ++id) {
    if (sim.role(id) == Role::kLeader) ++leaders;
    EXPECT_TRUE(sim.output(id).has_number());
  }
  EXPECT_EQ(leaders, 1);
}

TEST(UnslottedTest, OutputSpreadStaysWithinOneRound) {
  // Phase-shifted nodes may straddle a round boundary, so their outputs can
  // differ by one — but never more.
  UnslottedConfig config = basic_config(8, 2, 5, 2, 7);
  config.N = 16;
  UnslottedSimulation sim(config, TrapdoorProtocol::factory(),
                          std::make_unique<RandomSubsetAdversary>(2),
                          std::make_unique<SimultaneousActivation>(5));
  const auto result = sim.run_until_synced(4000000);
  ASSERT_TRUE(result.synced);
  for (int i = 0; i < 500; ++i) {
    sim.tick();
    const int64_t spread = sim.output_spread();
    EXPECT_LE(spread, 1) << "tick " << sim.ticks();
  }
}

TEST(UnslottedTest, UnslottedCostIsRoughlyTheRepetitionFactor) {
  // Slotted baseline vs ticks_per_slot = 2: ticks-to-sync should be about
  // 2x the slotted rounds-to-sync (same protocol, same parameters).
  UnslottedConfig config = basic_config(8, 2, 4, 1, 5);
  config.N = 16;
  UnslottedSimulation slotted(config, TrapdoorProtocol::factory(),
                              std::make_unique<RandomSubsetAdversary>(2),
                              std::make_unique<SimultaneousActivation>(4));
  const auto slotted_result = slotted.run_until_synced(4000000);
  ASSERT_TRUE(slotted_result.synced);

  config.ticks_per_slot = 2;
  UnslottedSimulation doubled(config, TrapdoorProtocol::factory(),
                              std::make_unique<RandomSubsetAdversary>(2),
                              std::make_unique<SimultaneousActivation>(4));
  const auto doubled_result = doubled.run_until_synced(8000000);
  ASSERT_TRUE(doubled_result.synced);

  const double ratio = static_cast<double>(doubled_result.ticks) /
                       static_cast<double>(slotted_result.ticks);
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 4.0);  // constant multiplicative cost, about 2x
}

TEST(UnslottedTest, GoodSamaritanAlsoSurvivesTheTransform) {
  // The transform is protocol-agnostic: the Good Samaritan protocol (with
  // its much more intricate round structure) must also synchronize with
  // phase-shifted nodes.
  UnslottedConfig config = basic_config(8, 2, 4, 2, 17);
  config.N = 8;
  UnslottedSimulation sim(config, GoodSamaritanProtocol::factory(),
                          std::make_unique<RandomSubsetAdversary>(2),
                          std::make_unique<SimultaneousActivation>(4));
  const auto result = sim.run_until_synced(50000000);
  ASSERT_TRUE(result.synced);
  int leaders = 0;
  for (NodeId id = 0; id < 4; ++id) {
    if (sim.role(id) == Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(UnslottedTest, DeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    UnslottedConfig config = basic_config(8, 2, 4, 2, seed);
    config.N = 8;
    UnslottedSimulation sim(config, TrapdoorProtocol::factory(),
                            std::make_unique<RandomSubsetAdversary>(2),
                            std::make_unique<SimultaneousActivation>(4));
    return sim.run_until_synced(4000000).ticks;
  };
  EXPECT_EQ(run(3), run(3));
  EXPECT_NE(run(3), run(4));
}

}  // namespace
}  // namespace wsync
