#!/usr/bin/env bash
# Check (never rewrite) clang-format conformance of src/ and tools/ against
# the checked-in .clang-format. tests/ and bench/ keep their hand-tuned
# table layouts and are deliberately out of scope.
#
# Usage: tools/check_format.sh
#
# Exits non-zero on any deviation. When clang-format is not installed,
# fails with a clear message: the format gate must never pass vacuously.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

fmt_bin="${CLANG_FORMAT:-clang-format}"
if ! command -v "${fmt_bin}" >/dev/null 2>&1; then
  echo "check_format.sh: '${fmt_bin}' not found on PATH." >&2
  echo "Install clang-format (or set CLANG_FORMAT) and re-run." >&2
  exit 2
fi

mapfile -t sources < <(
  find "${repo_root}/src" "${repo_root}/tools" \
    -name '*.cc' -o -name '*.cpp' -o -name '*.h' | sort)

echo "check_format.sh: $("${fmt_bin}" --version)"
echo "check_format.sh: checking ${#sources[@]} files"

"${fmt_bin}" --dry-run -Werror --style=file "${sources[@]}"
echo "check_format.sh: clean"
