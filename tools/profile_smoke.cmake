# End-to-end smoke for the telemetry export path: run one catalog scenario
# with --metrics-out and --trace-out, validate both documents as real JSON
# (the trace against the Chrome trace-event schema Perfetto requires), then
# render the metrics with wsync_profile in both text and CSV modes. Driven
# as `cmake -P` from a CTest entry in tools/CMakeLists.txt, which passes
# WSYNC_RUN, WSYNC_PROFILE, PYTHON_EXECUTABLE, and OUT_DIR.
set(metrics_json ${OUT_DIR}/profile_smoke_metrics.json)
set(trace_json ${OUT_DIR}/profile_smoke_trace.json)

execute_process(
  COMMAND ${WSYNC_RUN} --filter ^single_frequency_band$ --seeds 1
          --metrics-out ${metrics_json} --trace-out ${trace_json}
  RESULT_VARIABLE run_rc OUTPUT_QUIET)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "wsync_run --metrics-out/--trace-out failed: ${run_rc}")
endif()

# Schema validation: the metrics file is a JSON object with the three
# class sections; the trace is a JSON array of event objects each carrying
# the keys the Chrome trace-event format requires (name/ph/pid/ts or, for
# metadata records, name/ph/pid).
execute_process(
  COMMAND ${PYTHON_EXECUTABLE} -c "
import json, sys
metrics = json.load(open(sys.argv[1]))
assert metrics['schema'] == 'wsync-metrics-v1', metrics['schema']
for section in ('deterministic', 'engine', 'timing'):
    assert section in metrics, section
trace = json.load(open(sys.argv[2]))
assert isinstance(trace, list) and trace, 'empty trace'
for event in trace:
    assert isinstance(event, dict), event
    assert {'name', 'ph', 'pid'} <= event.keys(), event
    assert event['ph'] == 'M' or 'ts' in event, event
print(f'validated {len(trace)} trace event(s)')
" ${metrics_json} ${trace_json}
  RESULT_VARIABLE schema_rc)
if(NOT schema_rc EQUAL 0)
  message(FATAL_ERROR "telemetry JSON schema validation failed")
endif()

execute_process(
  COMMAND ${PYTHON_EXECUTABLE} ${WSYNC_PROFILE} ${metrics_json}
  RESULT_VARIABLE profile_rc OUTPUT_VARIABLE profile_out)
if(NOT profile_rc EQUAL 0)
  message(FATAL_ERROR "wsync_profile failed: ${profile_rc}")
endif()
if(NOT profile_out MATCHES "hot spots \\(by rounds simulated\\)")
  message(FATAL_ERROR "wsync_profile output missing the hot-spot table:\n"
                      "${profile_out}")
endif()
if(NOT profile_out MATCHES "single_frequency_band")
  message(FATAL_ERROR "wsync_profile output missing the scenario row")
endif()

execute_process(
  COMMAND ${PYTHON_EXECUTABLE} ${WSYNC_PROFILE} ${metrics_json} --csv
  RESULT_VARIABLE csv_rc OUTPUT_VARIABLE csv_out)
if(NOT csv_rc EQUAL 0)
  message(FATAL_ERROR "wsync_profile --csv failed: ${csv_rc}")
endif()
if(NOT csv_out MATCHES "scenario,chunks,runs,")
  message(FATAL_ERROR "wsync_profile --csv missing the header row")
endif()

message(STATUS "profile smoke ok")
