#!/usr/bin/env bash
# Run clang-tidy over the first-party tree (src/, tools/, bench/) using the
# checked-in .clang-tidy config and a compile_commands.json.
#
# Usage: tools/run_tidy.sh [build-dir] [report-file]
#   build-dir    defaults to build/ (must contain compile_commands.json;
#                every preset exports one via CMAKE_EXPORT_COMPILE_COMMANDS)
#   report-file  defaults to <build-dir>/tidy_report.txt (CI uploads it)
#
# Exits non-zero on any finding (.clang-tidy sets WarningsAsErrors: '*').
# When clang-tidy is not installed, fails with a clear message: the tidy
# gate must never pass vacuously.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
report="${2:-${build_dir}/tidy_report.txt}"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "run_tidy.sh: '${tidy_bin}' not found on PATH." >&2
  echo "Install clang-tidy (or set CLANG_TIDY) and re-run." >&2
  exit 2
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_tidy.sh: ${build_dir}/compile_commands.json missing." >&2
  echo "Configure first: cmake --preset dev (exports compile commands)." >&2
  exit 2
fi

mapfile -t sources < <(
  find "${repo_root}/src" "${repo_root}/tools" "${repo_root}/bench" \
    -name '*.cc' -o -name '*.cpp' | sort)

echo "run_tidy.sh: $("${tidy_bin}" --version | head -n 2 | tail -n 1)"
echo "run_tidy.sh: checking ${#sources[@]} translation units"

status=0
"${tidy_bin}" -p "${build_dir}" --quiet "${sources[@]}" \
  2>&1 | tee "${report}" || status=$?

if [[ ${status} -ne 0 ]]; then
  echo "run_tidy.sh: findings above (full report: ${report})" >&2
  exit 1
fi
echo "run_tidy.sh: clean"
