// wsync_run — the scenario catalog driver.
//
//   wsync_run --list [--filter REGEX]    # catalog overview
//   wsync_run --all [--seeds K] [--workers W] [--json PATH] [--csv PATH]
//   wsync_run NAME [NAME...] [options]   # run a subset by name
//   wsync_run --filter REGEX [options]   # run scenarios matching a pattern
//   wsync_run ... --max-rounds [NAME=]K  # override per-point round budgets
//   wsync_run ... --checkpoint PATH [--resume]  # checkpointable execution
//   wsync_run ... --metrics-out PATH     # export the metrics document
//   wsync_run ... --trace-out PATH [--trace-filter REGEX]  # Chrome trace
//
// Every selected scenario runs through the streaming sweep service
// (src/service/): (scenario, point, seed)-granular jobs on one shared pool,
// chunks merged back in catalog order, and the JSON/CSV exports streamed to
// disk as scenarios complete — peak memory is bounded by the scheduling
// window, never the catalog. stdout gets a markdown table per scenario.
// Exports contain only deterministic aggregates (never worker counts or
// wall-clock), so two runs at different --workers must produce
// byte-identical files — CI diffs exactly that, and the same guarantee
// extends to one-shot vs kill-and-resume vs served execution.
//
// --checkpoint PATH appends every completed chunk to a self-checksummed
// checkpoint file; --resume (requires --checkpoint) replays the chunks a
// previous, possibly killed, run already completed and computes only the
// rest, producing byte-identical exports. --max-rounds overrides the
// liveness budget of every point (bare K) or of one scenario's points
// (NAME=K, repeatable; the per-scenario form wins). Exit status: 0 when
// every scenario met its expected invariants (including per-point energy
// budgets), 1 otherwise, 2 on usage errors.
//
// --metrics-out PATH writes the wsync-metrics-v1 JSON document (see
// src/service/run_metrics.h): the "deterministic" section is
// byte-identical across --workers, --engine, and one-shot vs resumed
// execution — CI diffs it the same way it diffs the exports — while
// "engine" and "timing" carry the per-engine and wall-clock observations.
// --trace-out PATH streams a Chrome trace-event JSON array (load it in
// Perfetto / chrome://tracing) of the first computed chunk's first seed;
// attaching the sink never changes any result. --trace-filter REGEX keeps
// only events whose name matches.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/common/types.h"
#include "src/scenario/registry.h"
#include "src/scenario/report.h"
#include "src/scenario/scenario.h"
#include "src/service/checkpoint.h"
#include "src/service/run_metrics.h"
#include "src/service/serve_protocol.h"
#include "src/service/streaming_sweep.h"
#include "src/stats/table.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/stopwatch.h"
#include "src/telemetry/trace_writer.h"

namespace wsync {
namespace {

struct Options {
  bool list = false;
  bool all = false;
  int seeds = 0;    // 0 = per-scenario default
  int workers = 0;  // 0 = ThreadPool::default_workers()
  std::string json_path;
  std::string csv_path;
  std::string filter;  // regex over scenario names; empty = unused
  std::vector<std::string> names;
  long default_max_rounds = 0;  // 0 = no override
  std::map<std::string, long> max_rounds_overrides;  // per scenario
  EngineMode engine = EngineMode::kAuto;
  std::string checkpoint_path;  // empty = no checkpointing
  bool resume = false;
  int window = 0;       // 0 = 2 x workers
  int throttle_ms = 0;  // sleep per computed chunk (test/ops pacing)
  std::string metrics_path;  // empty = no metrics export
  std::string trace_path;    // empty = no Chrome trace export
  std::string trace_filter;  // regex over event names; empty = keep all
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: wsync_run --list [--filter REGEX]\n"
               "       wsync_run (--all | --filter REGEX | NAME...)"
               " [--seeds K] [--workers W]\n"
               "                 [--json PATH] [--csv PATH]"
               " [--max-rounds [NAME=]K]...\n"
               "                 [--checkpoint PATH [--resume]]"
               " [--window K] [--throttle-ms MS]\n"
               "\n"
               "  --list       list the scenario catalog and exit\n"
               "  --all        run every scenario in the catalog\n"
               "  --filter REGEX\n"
               "               select scenarios whose name matches REGEX\n"
               "               (unanchored search; anchor with ^/$)\n"
               "  --seeds K    seeds per experiment point"
               " (default: each scenario's own)\n"
               "  --workers W  thread-pool size (default: hardware)\n"
               "  --json PATH  stream per-scenario JSON summaries to PATH\n"
               "  --csv PATH   stream one flat CSV row per grid point to"
               " PATH\n"
               "  --max-rounds [NAME=]K\n"
               "               override every point's liveness budget (bare"
               " K),\n"
               "               or one scenario's (NAME=K; repeatable,"
               " wins)\n"
               "  --engine dense|sparse|auto\n"
               "               round-loop implementation (default auto ="
               " sparse);\n"
               "               results are bit-identical by contract, so"
               " exports\n"
               "               from the two engines must diff empty\n"
               "  --checkpoint PATH\n"
               "               append every completed chunk (one grid"
               " point) to a\n"
               "               self-checksummed checkpoint file\n"
               "  --resume     skip the chunks PATH already records"
               " (requires\n"
               "               --checkpoint; exports stay byte-identical"
               " to an\n"
               "               uninterrupted run)\n"
               "  --window K   chunks scheduled past the merge frontier\n"
               "               (default: 2 x workers; bounds peak memory)\n"
               "  --throttle-ms MS\n"
               "               sleep MS after each computed chunk (pacing"
               " for the\n"
               "               crash/resume harnesses; never affects"
               " results)\n"
               "  --metrics-out PATH\n"
               "               write the wsync-metrics-v1 JSON document:"
               " the\n"
               "               \"deterministic\" section is byte-identical"
               " across\n"
               "               --workers/--engine/resume; \"timing\" is"
               " wall-clock\n"
               "  --trace-out PATH\n"
               "               stream a Chrome trace-event JSON array"
               " (Perfetto /\n"
               "               chrome://tracing) of the first computed"
               " chunk's\n"
               "               first seed; never affects results\n"
               "  --trace-filter REGEX\n"
               "               keep only trace events whose name matches"
               " (requires\n"
               "               --trace-out)\n");
}

bool parse_positive_long(const char* text, long* out) {
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || parsed < 1 || parsed > (1L << 40)) {
    return false;
  }
  *out = parsed;
  return true;
}

bool parse_int_flag(const std::string& flag, const char* value, int min,
                    int* out) {
  if (value == nullptr) {
    std::fprintf(stderr, "wsync_run: %s needs a value\n", flag.c_str());
    return false;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < min || parsed > 1 << 20) {
    std::fprintf(stderr, "wsync_run: bad value for %s: '%s'\n", flag.c_str(),
                 value);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool parse_max_rounds(const char* value, Options* options) {
  if (value == nullptr) {
    std::fprintf(stderr, "wsync_run: --max-rounds needs a value\n");
    return false;
  }
  const std::string text = value;
  const size_t eq = text.find('=');
  long rounds = 0;
  if (eq == std::string::npos) {
    if (!parse_positive_long(text.c_str(), &rounds)) {
      std::fprintf(stderr, "wsync_run: bad value for --max-rounds: '%s'\n",
                   value);
      return false;
    }
    options->default_max_rounds = rounds;
    return true;
  }
  const std::string name = text.substr(0, eq);
  if (name.empty() || !parse_positive_long(text.c_str() + eq + 1, &rounds)) {
    std::fprintf(stderr, "wsync_run: bad value for --max-rounds: '%s'\n",
                 value);
    return false;
  }
  options->max_rounds_overrides[name] = rounds;
  return true;
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (arg == "--list") {
      options->list = true;
    } else if (arg == "--all") {
      options->all = true;
    } else if (arg == "--seeds") {
      if (!parse_int_flag(arg, next, 1, &options->seeds)) return false;
      ++i;
    } else if (arg == "--workers") {
      if (!parse_int_flag(arg, next, 1, &options->workers)) return false;
      ++i;
    } else if (arg == "--window") {
      if (!parse_int_flag(arg, next, 1, &options->window)) return false;
      ++i;
    } else if (arg == "--throttle-ms") {
      if (!parse_int_flag(arg, next, 0, &options->throttle_ms)) return false;
      ++i;
    } else if (arg == "--json") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --json needs a path\n");
        return false;
      }
      options->json_path = next;
      ++i;
    } else if (arg == "--csv") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --csv needs a path\n");
        return false;
      }
      options->csv_path = next;
      ++i;
    } else if (arg == "--checkpoint") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --checkpoint needs a path\n");
        return false;
      }
      options->checkpoint_path = next;
      ++i;
    } else if (arg == "--resume") {
      options->resume = true;
    } else if (arg == "--metrics-out") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --metrics-out needs a path\n");
        return false;
      }
      options->metrics_path = next;
      ++i;
    } else if (arg == "--trace-out") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --trace-out needs a path\n");
        return false;
      }
      options->trace_path = next;
      ++i;
    } else if (arg == "--trace-filter") {
      if (next == nullptr || *next == '\0') {
        std::fprintf(stderr, "wsync_run: --trace-filter needs a regex\n");
        return false;
      }
      options->trace_filter = next;
      ++i;
    } else if (arg == "--filter") {
      if (next == nullptr || *next == '\0') {
        std::fprintf(stderr, "wsync_run: --filter needs a regex\n");
        return false;
      }
      options->filter = next;
      ++i;
    } else if (arg == "--max-rounds") {
      if (!parse_max_rounds(next, options)) return false;
      ++i;
    } else if (arg == "--engine") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --engine needs a value\n");
        return false;
      }
      if (!parse_engine_mode(next, &options->engine)) {
        std::fprintf(stderr,
                     "wsync_run: bad value for --engine: '%s' (want %s, %s "
                     "or %s)\n",
                     next, to_string(EngineMode::kDense),
                     to_string(EngineMode::kSparse),
                     to_string(EngineMode::kAuto));
        return false;
      }
      ++i;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wsync_run: unknown flag '%s'\n", arg.c_str());
      return false;
    } else {
      options->names.push_back(arg);
    }
  }
  if (options->list) return true;
  const int selectors = (options->all ? 1 : 0) +
                        (options->names.empty() ? 0 : 1) +
                        (options->filter.empty() ? 0 : 1);
  if (selectors != 1) {
    std::fprintf(stderr,
                 "wsync_run: pass exactly one of --all, --filter REGEX, or "
                 "scenario names (see --list)\n");
    return false;
  }
  if (options->resume && options->checkpoint_path.empty()) {
    std::fprintf(stderr, "wsync_run: --resume requires --checkpoint PATH\n");
    return false;
  }
  if (!options->trace_filter.empty() && options->trace_path.empty()) {
    std::fprintf(stderr,
                 "wsync_run: --trace-filter requires --trace-out PATH\n");
    return false;
  }
  for (const auto& [name, rounds] : options->max_rounds_overrides) {
    if (ScenarioRegistry::find(name) == nullptr) {
      std::fprintf(stderr,
                   "wsync_run: --max-rounds names unknown scenario '%s' "
                   "(see --list)\n",
                   name.c_str());
      return false;
    }
  }
  return true;
}

/// The --filter selection, or nullopt after printing an error (bad regex or
/// nothing matched).
std::optional<std::vector<const Scenario*>> filtered_selection(
    const std::string& filter) {
  std::vector<const Scenario*> selected;
  try {
    selected = ScenarioRegistry::matching(filter);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "wsync_run: %s\n", error.what());
    return std::nullopt;
  }
  if (selected.empty()) {
    std::fprintf(stderr,
                 "wsync_run: --filter '%s' matches no scenario (see "
                 "--list)\n",
                 filter.c_str());
    return std::nullopt;
  }
  return selected;
}

int list_catalog(const Options& options) {
  std::vector<const Scenario*> listed;
  if (!options.filter.empty()) {
    const auto selected = filtered_selection(options.filter);
    if (!selected.has_value()) return 2;
    listed = *selected;
  } else {
    for (const Scenario& scenario : ScenarioRegistry::all()) {
      listed.push_back(&scenario);
    }
  }
  Table table({"name", "points", "seeds", "expects", "summary"});
  for (const Scenario* scenario_ptr : listed) {
    const Scenario& scenario = *scenario_ptr;
    std::string expects;
    auto expect = [&expects](bool on, const char* what) {
      if (!on) return;
      if (!expects.empty()) expects += "+";
      expects += what;
    };
    expect(scenario.expect_all_synced, "synced");
    expect(scenario.expect_agreement_clean, "agreement");
    expect(scenario.expect_correctness_clean, "correctness");
    if (expects.empty()) expects = "commit-only";
    table.row()
        .cell(scenario.name)
        .cell(static_cast<int64_t>(scenario.grid.size()))
        .cell(static_cast<int64_t>(scenario.default_seeds))
        .cell(expects)
        .cell(scenario.summary);
  }
  std::printf("%zu scenarios:\n\n%s", listed.size(),
              table.markdown().c_str());
  std::printf(
      "\nAll scenarios additionally expect zero synch-commit violations\n"
      "(no output is ever retracted to bottom) and zero energy-budget\n"
      "violations on points that set one.\n");
  return 0;
}

/// The scenario with any --max-rounds and --engine overrides applied to
/// every point.
Scenario with_round_budget(const Scenario& scenario,
                           const Options& options) {
  long rounds = options.default_max_rounds;
  if (const auto it = options.max_rounds_overrides.find(scenario.name);
      it != options.max_rounds_overrides.end()) {
    rounds = it->second;
  }
  if (rounds == 0 && options.engine == EngineMode::kAuto) return scenario;
  Scenario overridden = scenario;
  for (ExperimentPoint& point : overridden.grid) {
    if (rounds != 0) point.max_rounds = rounds;
    point.engine = options.engine;
  }
  return overridden;
}

/// Streams the CLI's per-scenario stdout report and feeds the export
/// writers, all in catalog order as the sweep service merges chunks.
class CliSink : public ChunkSink {
 public:
  CliSink(StreamingJsonWriter* json, StreamingCsvWriter* csv)
      : json_(json), csv_(csv) {}

  void on_scenario_begin(size_t /*scenario_index*/,
                         const PlannedScenario& planned) override {
    std::printf("## %s — %s\n\n", planned.scenario.name.c_str(),
                planned.scenario.summary.c_str());
    std::printf("%zu points x %d seeds\n\n", planned.scenario.grid.size(),
                planned.seeds);
    std::fflush(stdout);
  }

  void on_chunk(size_t /*scenario_index*/, size_t /*point_index*/,
                const PointResult& /*result*/,
                bool /*from_checkpoint*/) override {}

  void on_scenario_end(size_t /*scenario_index*/,
                       const PlannedScenario& planned,
                       const std::vector<PointResult>& results,
                       const std::vector<std::string>& failures) override {
    const Table table = results_table(planned.scenario, results);
    std::printf("%s\n", table.markdown().c_str());
    for (const std::string& failure : failures) {
      std::printf("EXPECTATION FAILED: %s\n", failure.c_str());
    }
    std::printf("%s\n\n", failures.empty() ? "ok" : "FAILED");
    std::fflush(stdout);
    if (json_ != nullptr) {
      json_->add_scenario(planned.scenario, planned.seeds, results,
                          failures);
    }
    if (csv_ != nullptr) csv_->add(planned.scenario, results);
  }

 private:
  StreamingJsonWriter* json_;
  StreamingCsvWriter* csv_;
};

int run_scenarios(const Options& options) {
  std::vector<const Scenario*> selected;
  if (options.all) {
    for (const Scenario& scenario : ScenarioRegistry::all()) {
      selected.push_back(&scenario);
    }
  } else if (!options.filter.empty()) {
    const auto filtered = filtered_selection(options.filter);
    if (!filtered.has_value()) return 2;
    selected = *filtered;
  } else {
    for (const std::string& name : options.names) {
      const Scenario* scenario = ScenarioRegistry::find(name);
      if (scenario == nullptr) {
        std::fprintf(stderr,
                     "wsync_run: unknown scenario '%s' (see --list)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(scenario);
    }
  }

  // Apply the CLI overrides, then hand the ordered selection to the sweep
  // service as one plan.
  std::vector<Scenario> overridden;
  overridden.reserve(selected.size());
  for (const Scenario* scenario : selected) {
    overridden.push_back(with_round_budget(*scenario, options));
  }
  std::vector<const Scenario*> planned;
  planned.reserve(overridden.size());
  for (const Scenario& scenario : overridden) planned.push_back(&scenario);

  SweepPlan plan;
  try {
    plan = make_plan(planned, options.seeds);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "wsync_run: %s\n", error.what());
    return 2;
  }
  const uint64_t fingerprint = plan_fingerprint(plan);

  CheckpointData resumed;
  if (options.resume) {
    CheckpointLoad load = load_checkpoint(options.checkpoint_path,
                                          fingerprint);
    if (!load.ok()) {
      std::fprintf(stderr, "wsync_run: %s\n", load.error.c_str());
      return 2;
    }
    if (load.dropped_partial_tail) {
      std::fprintf(stderr,
                   "wsync_run: checkpoint '%s': dropped an interrupted "
                   "partial tail line\n",
                   options.checkpoint_path.c_str());
    }
    resumed = std::move(load.chunks);
  }

  std::optional<CheckpointWriter> checkpoint;
  if (!options.checkpoint_path.empty()) {
    checkpoint.emplace(options.checkpoint_path, fingerprint,
                       options.resume);
    if (!checkpoint->ok()) {
      std::fprintf(stderr, "wsync_run: cannot write --checkpoint '%s'\n",
                   options.checkpoint_path.c_str());
      return 2;
    }
  }

  // Exports stream to disk as scenarios complete; opening up front fails
  // fast on an unwritable path instead of after the whole run.
  std::optional<std::ofstream> json_file;
  std::optional<StreamingJsonWriter> json_writer;
  if (!options.json_path.empty()) {
    json_file.emplace(options.json_path);
    if (!*json_file) {
      std::fprintf(stderr, "wsync_run: cannot write --json '%s'\n",
                   options.json_path.c_str());
      return 2;
    }
    json_writer.emplace(*json_file);
  }
  std::optional<std::ofstream> csv_file;
  std::optional<StreamingCsvWriter> csv_writer;
  if (!options.csv_path.empty()) {
    csv_file.emplace(options.csv_path);
    if (!*csv_file) {
      std::fprintf(stderr, "wsync_run: cannot write --csv '%s'\n",
                   options.csv_path.c_str());
      return 2;
    }
    csv_writer.emplace(*csv_file);
  }
  std::optional<std::ofstream> metrics_file;
  if (!options.metrics_path.empty()) {
    metrics_file.emplace(options.metrics_path);
    if (!*metrics_file) {
      std::fprintf(stderr, "wsync_run: cannot write --metrics-out '%s'\n",
                   options.metrics_path.c_str());
      return 2;
    }
  }
  std::optional<std::ofstream> trace_file;
  std::optional<telemetry::ChromeTraceWriter> trace_writer;
  std::optional<telemetry::TelemetrySink> trace_sink;
  if (!options.trace_path.empty()) {
    trace_file.emplace(options.trace_path);
    if (!*trace_file) {
      std::fprintf(stderr, "wsync_run: cannot write --trace-out '%s'\n",
                   options.trace_path.c_str());
      return 2;
    }
    trace_writer.emplace(*trace_file);
    try {
      trace_sink.emplace(&*trace_writer, options.trace_filter);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "wsync_run: bad --trace-filter '%s': %s\n",
                   options.trace_filter.c_str(), error.what());
      return 2;
    }
  }

  telemetry::MetricsRegistry registry;
  RunMetricsCollector metrics(&registry);

  ThreadPool pool(options.workers);
  CliSink sink(json_writer.has_value() ? &*json_writer : nullptr,
               csv_writer.has_value() ? &*csv_writer : nullptr);
  StreamingSweepOptions sweep_options;
  sweep_options.window = static_cast<size_t>(options.window);
  sweep_options.checkpoint =
      checkpoint.has_value() ? &*checkpoint : nullptr;
  sweep_options.resume = options.resume ? &resumed : nullptr;
  sweep_options.throttle_ms = options.throttle_ms;
  sweep_options.metrics = metrics_file.has_value() ? &metrics : nullptr;
  sweep_options.trace = trace_sink.has_value() ? &*trace_sink : nullptr;

  const telemetry::Stopwatch sweep_watch;
  SweepOutcome outcome;
  try {
    outcome = run_streaming_sweep(plan, pool, sweep_options, sink);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "wsync_run: %s\n", error.what());
    return 2;
  }
  if (json_writer.has_value()) json_writer->finish();
  if (trace_writer.has_value()) trace_writer->close();

  if (metrics_file.has_value()) {
    // Timing metrics land in the "timing" section only — the walls and CI
    // diff "deterministic" alone, so wall-clock and pool-schedule noise
    // here is harmless by construction.
    const auto timing = telemetry::MetricClass::kTiming;
    const ThreadPool::Stats pool_stats = pool.stats();
    const double sweep_millis = sweep_watch.elapsed_millis();
    registry.gauge("stage_sweep_millis", timing).set(sweep_millis);
    registry.counter("pool_tasks_executed", timing)
        .add(pool_stats.tasks_executed);
    registry.counter("pool_tasks_stolen", timing)
        .add(pool_stats.tasks_stolen);
    registry.gauge("pool_busy_millis", timing)
        .set(static_cast<double>(pool_stats.busy_nanos) / 1e6);
    registry.gauge("pool_peak_pending", timing)
        .set(static_cast<double>(pool_stats.peak_pending));
    registry.gauge("pool_workers", timing)
        .set(static_cast<double>(pool_stats.workers));
    // Fraction of worker wall time spent inside tasks over the sweep.
    const double capacity_millis = sweep_millis * pool_stats.workers;
    registry.gauge("pool_utilization", timing)
        .set(capacity_millis > 0.0
                 ? static_cast<double>(pool_stats.busy_nanos) / 1e6 /
                       capacity_millis
                 : 0.0);
    metrics.write_json(*metrics_file);
    if (!*metrics_file) {
      std::fprintf(stderr, "wsync_run: error writing --metrics-out '%s'\n",
                   options.metrics_path.c_str());
      return 2;
    }
  }

  std::printf("%zu scenario(s), %d failed\n", plan.scenarios.size(),
              outcome.failed_scenarios);
  return outcome.failed_scenarios == 0 ? 0 : 1;
}

}  // namespace
}  // namespace wsync

int main(int argc, char** argv) {
  wsync::Options options;
  if (!wsync::parse_args(argc, argv, &options)) {
    wsync::print_usage(stderr);
    return 2;
  }
  if (options.list) return wsync::list_catalog(options);
  return wsync::run_scenarios(options);
}
