// wsync_run — the scenario catalog driver.
//
//   wsync_run --list [--filter REGEX]    # catalog overview
//   wsync_run --all [--seeds K] [--workers W] [--json PATH] [--csv PATH]
//   wsync_run NAME [NAME...] [options]   # run a subset by name
//   wsync_run --filter REGEX [options]   # run scenarios matching a pattern
//   wsync_run ... --max-rounds [NAME=]K  # override per-point round budgets
//
// Every selected scenario runs its grid through run_points_parallel on one
// shared pool; stdout gets a markdown table per scenario, --json gets a
// machine-readable summary, --csv a catalog-wide flat table. Both exports
// contain only deterministic aggregates (never worker counts or
// wall-clock), so two runs at different --workers must produce
// byte-identical files — CI diffs exactly that. --max-rounds overrides the
// liveness budget of every point (bare K) or of one scenario's points
// (NAME=K, repeatable; the per-scenario form wins). Exit status: 0 when
// every scenario met its expected invariants (including per-point energy
// budgets), 1 otherwise, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/scenario/registry.h"
#include "src/scenario/report.h"
#include "src/scenario/scenario.h"
#include "src/stats/table.h"

namespace wsync {
namespace {

struct Options {
  bool list = false;
  bool all = false;
  int seeds = 0;    // 0 = per-scenario default
  int workers = 0;  // 0 = ThreadPool::default_workers()
  std::string json_path;
  std::string csv_path;
  std::string filter;  // regex over scenario names; empty = unused
  std::vector<std::string> names;
  long default_max_rounds = 0;  // 0 = no override
  std::map<std::string, long> max_rounds_overrides;  // per scenario
  EngineMode engine = EngineMode::kAuto;
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: wsync_run --list [--filter REGEX]\n"
               "       wsync_run (--all | --filter REGEX | NAME...)"
               " [--seeds K] [--workers W]\n"
               "                 [--json PATH] [--csv PATH]"
               " [--max-rounds [NAME=]K]...\n"
               "\n"
               "  --list       list the scenario catalog and exit\n"
               "  --all        run every scenario in the catalog\n"
               "  --filter REGEX\n"
               "               select scenarios whose name matches REGEX\n"
               "               (unanchored search; anchor with ^/$)\n"
               "  --seeds K    seeds per experiment point"
               " (default: each scenario's own)\n"
               "  --workers W  thread-pool size (default: hardware)\n"
               "  --json PATH  write per-scenario JSON summaries to PATH\n"
               "  --csv PATH   write one flat CSV row per grid point to"
               " PATH\n"
               "  --max-rounds [NAME=]K\n"
               "               override every point's liveness budget (bare"
               " K),\n"
               "               or one scenario's (NAME=K; repeatable,"
               " wins)\n"
               "  --engine dense|sparse|auto\n"
               "               round-loop implementation (default auto ="
               " sparse);\n"
               "               results are bit-identical by contract, so"
               " exports\n"
               "               from the two engines must diff empty\n");
}

bool parse_positive_long(const char* text, long* out) {
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || parsed < 1 || parsed > (1L << 40)) {
    return false;
  }
  *out = parsed;
  return true;
}

bool parse_int_flag(const std::string& flag, const char* value, int min,
                    int* out) {
  if (value == nullptr) {
    std::fprintf(stderr, "wsync_run: %s needs a value\n", flag.c_str());
    return false;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < min || parsed > 1 << 20) {
    std::fprintf(stderr, "wsync_run: bad value for %s: '%s'\n", flag.c_str(),
                 value);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool parse_max_rounds(const char* value, Options* options) {
  if (value == nullptr) {
    std::fprintf(stderr, "wsync_run: --max-rounds needs a value\n");
    return false;
  }
  const std::string text = value;
  const size_t eq = text.find('=');
  long rounds = 0;
  if (eq == std::string::npos) {
    if (!parse_positive_long(text.c_str(), &rounds)) {
      std::fprintf(stderr, "wsync_run: bad value for --max-rounds: '%s'\n",
                   value);
      return false;
    }
    options->default_max_rounds = rounds;
    return true;
  }
  const std::string name = text.substr(0, eq);
  if (name.empty() || !parse_positive_long(text.c_str() + eq + 1, &rounds)) {
    std::fprintf(stderr, "wsync_run: bad value for --max-rounds: '%s'\n",
                 value);
    return false;
  }
  options->max_rounds_overrides[name] = rounds;
  return true;
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (arg == "--list") {
      options->list = true;
    } else if (arg == "--all") {
      options->all = true;
    } else if (arg == "--seeds") {
      if (!parse_int_flag(arg, next, 1, &options->seeds)) return false;
      ++i;
    } else if (arg == "--workers") {
      if (!parse_int_flag(arg, next, 1, &options->workers)) return false;
      ++i;
    } else if (arg == "--json") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --json needs a path\n");
        return false;
      }
      options->json_path = next;
      ++i;
    } else if (arg == "--csv") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --csv needs a path\n");
        return false;
      }
      options->csv_path = next;
      ++i;
    } else if (arg == "--filter") {
      if (next == nullptr || *next == '\0') {
        std::fprintf(stderr, "wsync_run: --filter needs a regex\n");
        return false;
      }
      options->filter = next;
      ++i;
    } else if (arg == "--max-rounds") {
      if (!parse_max_rounds(next, options)) return false;
      ++i;
    } else if (arg == "--engine") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_run: --engine needs a value\n");
        return false;
      }
      const std::string mode = next;
      if (mode == "dense") {
        options->engine = EngineMode::kDense;
      } else if (mode == "sparse") {
        options->engine = EngineMode::kSparse;
      } else if (mode == "auto") {
        options->engine = EngineMode::kAuto;
      } else {
        std::fprintf(stderr,
                     "wsync_run: bad value for --engine: '%s' (want dense, "
                     "sparse or auto)\n",
                     next);
        return false;
      }
      ++i;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "wsync_run: unknown flag '%s'\n", arg.c_str());
      return false;
    } else {
      options->names.push_back(arg);
    }
  }
  if (options->list) return true;
  const int selectors = (options->all ? 1 : 0) +
                        (options->names.empty() ? 0 : 1) +
                        (options->filter.empty() ? 0 : 1);
  if (selectors != 1) {
    std::fprintf(stderr,
                 "wsync_run: pass exactly one of --all, --filter REGEX, or "
                 "scenario names (see --list)\n");
    return false;
  }
  for (const auto& [name, rounds] : options->max_rounds_overrides) {
    if (ScenarioRegistry::find(name) == nullptr) {
      std::fprintf(stderr,
                   "wsync_run: --max-rounds names unknown scenario '%s' "
                   "(see --list)\n",
                   name.c_str());
      return false;
    }
  }
  return true;
}

/// The --filter selection, or nullopt after printing an error (bad regex or
/// nothing matched).
std::optional<std::vector<const Scenario*>> filtered_selection(
    const std::string& filter) {
  std::vector<const Scenario*> selected;
  try {
    selected = ScenarioRegistry::matching(filter);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "wsync_run: %s\n", error.what());
    return std::nullopt;
  }
  if (selected.empty()) {
    std::fprintf(stderr,
                 "wsync_run: --filter '%s' matches no scenario (see "
                 "--list)\n",
                 filter.c_str());
    return std::nullopt;
  }
  return selected;
}

int list_catalog(const Options& options) {
  std::vector<const Scenario*> listed;
  if (!options.filter.empty()) {
    const auto selected = filtered_selection(options.filter);
    if (!selected.has_value()) return 2;
    listed = *selected;
  } else {
    for (const Scenario& scenario : ScenarioRegistry::all()) {
      listed.push_back(&scenario);
    }
  }
  Table table({"name", "points", "seeds", "expects", "summary"});
  for (const Scenario* scenario_ptr : listed) {
    const Scenario& scenario = *scenario_ptr;
    std::string expects;
    auto expect = [&expects](bool on, const char* what) {
      if (!on) return;
      if (!expects.empty()) expects += "+";
      expects += what;
    };
    expect(scenario.expect_all_synced, "synced");
    expect(scenario.expect_agreement_clean, "agreement");
    expect(scenario.expect_correctness_clean, "correctness");
    if (expects.empty()) expects = "commit-only";
    table.row()
        .cell(scenario.name)
        .cell(static_cast<int64_t>(scenario.grid.size()))
        .cell(static_cast<int64_t>(scenario.default_seeds))
        .cell(expects)
        .cell(scenario.summary);
  }
  std::printf("%zu scenarios:\n\n%s", listed.size(),
              table.markdown().c_str());
  std::printf(
      "\nAll scenarios additionally expect zero synch-commit violations\n"
      "(no output is ever retracted to bottom) and zero energy-budget\n"
      "violations on points that set one.\n");
  return 0;
}

/// The scenario with any --max-rounds and --engine overrides applied to
/// every point.
Scenario with_round_budget(const Scenario& scenario,
                           const Options& options) {
  long rounds = options.default_max_rounds;
  if (const auto it = options.max_rounds_overrides.find(scenario.name);
      it != options.max_rounds_overrides.end()) {
    rounds = it->second;
  }
  if (rounds == 0 && options.engine == EngineMode::kAuto) return scenario;
  Scenario overridden = scenario;
  for (ExperimentPoint& point : overridden.grid) {
    if (rounds != 0) point.max_rounds = rounds;
    point.engine = options.engine;
  }
  return overridden;
}

bool write_file(const std::string& path, const std::string& content,
                const char* what) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "wsync_run: cannot write %s '%s'\n", what,
                 path.c_str());
    return false;
  }
  out << content;
  return true;
}

int run_scenarios(const Options& options) {
  std::vector<const Scenario*> selected;
  if (options.all) {
    for (const Scenario& scenario : ScenarioRegistry::all()) {
      selected.push_back(&scenario);
    }
  } else if (!options.filter.empty()) {
    const auto filtered = filtered_selection(options.filter);
    if (!filtered.has_value()) return 2;
    selected = *filtered;
  } else {
    for (const std::string& name : options.names) {
      const Scenario* scenario = ScenarioRegistry::find(name);
      if (scenario == nullptr) {
        std::fprintf(stderr,
                     "wsync_run: unknown scenario '%s' (see --list)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(scenario);
    }
  }

  ThreadPool pool(options.workers);
  std::string json = "{\n  \"scenarios\": [";
  CsvReport csv;
  int failed_scenarios = 0;
  for (size_t s = 0; s < selected.size(); ++s) {
    const Scenario scenario = with_round_budget(*selected[s], options);
    const int seeds =
        options.seeds > 0 ? options.seeds : scenario.default_seeds;
    std::printf("## %s — %s\n\n", scenario.name.c_str(),
                scenario.summary.c_str());
    std::printf("%zu points x %d seeds\n\n", scenario.grid.size(), seeds);

    const ScenarioResult result = run_scenario(scenario, seeds, pool);
    const Table table = results_table(scenario, result.points);
    std::printf("%s\n", table.markdown().c_str());
    for (const std::string& failure : result.failures) {
      std::printf("EXPECTATION FAILED: %s\n", failure.c_str());
    }
    std::printf("%s\n\n", result.ok() ? "ok" : "FAILED");
    if (!result.ok()) ++failed_scenarios;

    csv.add(scenario, result.points);

    json += s == 0 ? "\n" : ",\n";
    json += "    {\"name\": " + json_escaped(scenario.name);
    json += ", \"seeds\": " + std::to_string(seeds) + ", \"ok\": ";
    json += result.ok() ? "true" : "false";
    json += ", \"failures\": [";
    for (size_t f = 0; f < result.failures.size(); ++f) {
      if (f > 0) json += ", ";
      json += json_escaped(result.failures[f]);
    }
    json += "],\n     \"points\":\n";
    json += table.json(5);
    json += "}";
  }
  json += selected.empty() ? "]\n}\n" : "\n  ]\n}\n";

  if (!options.json_path.empty() &&
      !write_file(options.json_path, json, "--json")) {
    return 2;
  }
  if (!options.csv_path.empty() &&
      !write_file(options.csv_path, csv.str(), "--csv")) {
    return 2;
  }

  std::printf("%zu scenario(s), %d failed\n", selected.size(),
              failed_scenarios);
  return failed_scenarios == 0 ? 0 : 1;
}

}  // namespace
}  // namespace wsync

int main(int argc, char** argv) {
  wsync::Options options;
  if (!wsync::parse_args(argc, argv, &options)) {
    wsync::print_usage(stderr);
    return 2;
  }
  if (options.list) return wsync::list_catalog(options);
  return wsync::run_scenarios(options);
}
