// wsync_serve — the line-oriented scenario job server.
//
//   wsync_serve [--jobs PATH] [--workers W] [--json PATH] [--csv PATH]
//               [--window K] [--deadline-ms MS]
//
// Reads jobs one per line from --jobs (default: stdin) and streams results
// back on stdout, so a driver can feed a long grid through one warm process
// instead of one wsync_run invocation per scenario. The grammar lives in
// src/service/serve_protocol.h:
//
//   run NAME [seeds=K] [max_rounds=K] [engine=dense|sparse|auto]
//   all [seeds=K] [max_rounds=K] [engine=dense|sparse|auto]
//   ping                         # answered with "pong"
//   quit                         # stop reading, shut down cleanly
//
// Per scenario the server emits `begin NAME points=P seeds=K`, one
// `point <csv row>` line per grid point the moment the streaming sweep
// merges it (catalog order, same bytes as the --csv export rows), any
// `fail <expectation>` lines, and `end NAME ok|FAILED`. Jobs run on one
// shared ThreadPool through the same sweep service as wsync_run, and the
// optional --json/--csv exports use the same streaming writers — a served
// `all seeds=K` must produce byte-identical export files to
// `wsync_run --all --seeds K`, which CI diffs.
//
// After each executed job the server prints one telemetry line:
//
//   stat jobs=N failed=M job_millis=X pool_busy_millis=Y
//        pool_tasks=T pool_stolen=S
//
// job_millis is the just-finished job's wall time (telemetry Stopwatch);
// the pool_* figures are cumulative since startup. stat lines are
// operational observability only — they never appear in the exports, and
// drivers parsing point/end lines can ignore them.
//
// --deadline-ms arms an operational watchdog (the sanctioned Deadline
// wall-clock site): once expired the server stops accepting jobs after the
// current one and prints `serve: deadline reached`. It gates acceptance
// only — results never depend on it. Expiry is latched at every shutdown
// path (loop top, after a job drains, stdin EOF, quit), so a deadline that
// fires while a job is draining or while getline blocks is still reported
// and still reflected in the exit status.
//
// Exit status: 0 when every executed job met its expectations, 1 when any
// scenario FAILED, 2 on a malformed job line, an unknown scenario name, or
// a bad flag (stderr says which; nothing after the bad line executes),
// 3 when the --deadline-ms watchdog fired (and no executed job FAILED —
// job failures keep exit 1).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/scenario/registry.h"
#include "src/scenario/report.h"
#include "src/scenario/scenario.h"
#include "src/service/deadline.h"
#include "src/service/serve_protocol.h"
#include "src/service/streaming_sweep.h"
#include "src/telemetry/stopwatch.h"

namespace wsync {
namespace {

struct Options {
  std::string jobs_path;  // empty = stdin
  int workers = 0;        // 0 = ThreadPool::default_workers()
  std::string json_path;
  std::string csv_path;
  int window = 0;         // 0 = 2 x workers
  long deadline_ms = -1;  // < 0 = no watchdog
};

void print_usage(std::FILE* out) {
  std::fprintf(out,
               "usage: wsync_serve [--jobs PATH] [--workers W]"
               " [--json PATH] [--csv PATH]\n"
               "                   [--window K] [--deadline-ms MS]\n"
               "\n"
               "  --jobs PATH      read job lines from PATH instead of"
               " stdin\n"
               "  --workers W      thread-pool size (default: hardware)\n"
               "  --json PATH      stream per-scenario JSON summaries to"
               " PATH\n"
               "  --csv PATH       stream one flat CSV row per grid point"
               " to PATH\n"
               "  --window K       chunks scheduled past the merge"
               " frontier\n"
               "                   (default: 2 x workers)\n"
               "  --deadline-ms MS stop accepting jobs once MS ms have"
               " elapsed\n"
               "                   (operational watchdog; never affects"
               " results;\n"
               "                   exit 3 when it fires)\n"
               "\n"
               "job lines (one per line; # comments and blanks ignored):\n"
               "  run NAME [seeds=K] [max_rounds=K]"
               " [engine=dense|sparse|auto]\n"
               "  all [seeds=K] [max_rounds=K]"
               " [engine=dense|sparse|auto]\n"
               "  ping\n"
               "  quit\n");
}

bool parse_long_flag(const std::string& flag, const char* value, long min,
                     long* out) {
  if (value == nullptr) {
    std::fprintf(stderr, "wsync_serve: %s needs a value\n", flag.c_str());
    return false;
  }
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < min || parsed > 1L << 40) {
    std::fprintf(stderr, "wsync_serve: bad value for %s: '%s'\n",
                 flag.c_str(), value);
    return false;
  }
  *out = parsed;
  return true;
}

bool parse_int_flag(const std::string& flag, const char* value, int min,
                    int* out) {
  long parsed = 0;
  if (!parse_long_flag(flag, value, min, &parsed) || parsed > 1 << 20) {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      std::exit(0);
    } else if (arg == "--jobs") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_serve: --jobs needs a path\n");
        return false;
      }
      options->jobs_path = next;
      ++i;
    } else if (arg == "--workers") {
      if (!parse_int_flag(arg, next, 1, &options->workers)) return false;
      ++i;
    } else if (arg == "--window") {
      if (!parse_int_flag(arg, next, 1, &options->window)) return false;
      ++i;
    } else if (arg == "--deadline-ms") {
      if (!parse_long_flag(arg, next, 0, &options->deadline_ms)) {
        return false;
      }
      ++i;
    } else if (arg == "--json") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_serve: --json needs a path\n");
        return false;
      }
      options->json_path = next;
      ++i;
    } else if (arg == "--csv") {
      if (next == nullptr) {
        std::fprintf(stderr, "wsync_serve: --csv needs a path\n");
        return false;
      }
      options->csv_path = next;
      ++i;
    } else {
      std::fprintf(stderr, "wsync_serve: unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// The scenario with a job's max_rounds/engine overrides applied to every
/// point (mirrors wsync_run's --max-rounds/--engine semantics).
Scenario with_overrides(const Scenario& scenario, const ServeJob& job) {
  if (job.max_rounds == 0 && job.engine == EngineMode::kAuto) {
    return scenario;
  }
  Scenario overridden = scenario;
  for (ExperimentPoint& point : overridden.grid) {
    if (job.max_rounds != 0) point.max_rounds = job.max_rounds;
    point.engine = job.engine;
  }
  return overridden;
}

/// Streams the protocol's begin/point/fail/end lines and feeds the export
/// writers. Every line is flushed so a pipe-connected driver sees progress
/// the moment a chunk merges.
class ServeSink : public ChunkSink {
 public:
  ServeSink(StreamingJsonWriter* json, StreamingCsvWriter* csv)
      : json_(json), csv_(csv) {}

  void on_scenario_begin(size_t /*scenario_index*/,
                         const PlannedScenario& planned) override {
    std::printf("begin %s points=%zu seeds=%d\n",
                planned.scenario.name.c_str(), planned.scenario.grid.size(),
                planned.seeds);
    std::fflush(stdout);
  }

  void on_chunk(size_t scenario_index, size_t point_index,
                const PointResult& result,
                bool /*from_checkpoint*/) override {
    const PlannedScenario& planned = plan_->scenarios[scenario_index];
    std::printf("point %s\n",
                csv_point_row(planned.scenario, point_index, result).c_str());
    std::fflush(stdout);
  }

  void on_scenario_end(size_t /*scenario_index*/,
                       const PlannedScenario& planned,
                       const std::vector<PointResult>& results,
                       const std::vector<std::string>& failures) override {
    for (const std::string& failure : failures) {
      std::printf("fail %s\n", failure.c_str());
    }
    std::printf("end %s %s\n", planned.scenario.name.c_str(),
                failures.empty() ? "ok" : "FAILED");
    std::fflush(stdout);
    if (json_ != nullptr) {
      json_->add_scenario(planned.scenario, planned.seeds, results,
                          failures);
    }
    if (csv_ != nullptr) csv_->add(planned.scenario, results);
  }

  /// on_chunk receives only indices; the serve loop points the sink at
  /// each job's plan before running it.
  void set_plan(const SweepPlan* plan) { plan_ = plan; }

 private:
  StreamingJsonWriter* json_;
  StreamingCsvWriter* csv_;
  const SweepPlan* plan_ = nullptr;
};

int serve(const Options& options, std::istream& jobs) {
  std::optional<std::ofstream> json_file;
  std::optional<StreamingJsonWriter> json_writer;
  if (!options.json_path.empty()) {
    json_file.emplace(options.json_path);
    if (!*json_file) {
      std::fprintf(stderr, "wsync_serve: cannot write --json '%s'\n",
                   options.json_path.c_str());
      return 2;
    }
    json_writer.emplace(*json_file);
  }
  std::optional<std::ofstream> csv_file;
  std::optional<StreamingCsvWriter> csv_writer;
  if (!options.csv_path.empty()) {
    csv_file.emplace(options.csv_path);
    if (!*csv_file) {
      std::fprintf(stderr, "wsync_serve: cannot write --csv '%s'\n",
                   options.csv_path.c_str());
      return 2;
    }
    csv_writer.emplace(*csv_file);
  }

  ThreadPool pool(options.workers);
  ServeSink sink(json_writer.has_value() ? &*json_writer : nullptr,
                 csv_writer.has_value() ? &*csv_writer : nullptr);
  const Deadline deadline = options.deadline_ms < 0
                                ? Deadline::never()
                                : Deadline::after_ms(options.deadline_ms);

  std::printf("serve: ready\n");
  std::fflush(stdout);

  size_t executed_jobs = 0;
  int failed_jobs = 0;
  // Latched, not re-read at exit-code time: the watchdog can fire while a
  // job drains or while getline() blocks, and every shutdown path must
  // agree on whether it did. Re-checking deadline.expired() independently
  // per path let an EOF arriving after the fire report a clean exit 0.
  bool deadline_fired = false;
  const auto check_deadline = [&]() {
    if (!deadline_fired && deadline.expired()) {
      deadline_fired = true;
      std::printf("serve: deadline reached\n");
      std::fflush(stdout);
    }
    return deadline_fired;
  };
  std::string line;
  while (true) {
    if (check_deadline()) break;
    if (!std::getline(jobs, line)) {  // EOF shuts down like quit...
      check_deadline();  // ...but a deadline that fired first still reports
      break;
    }

    std::optional<ServeJob> job;
    try {
      job = parse_job_line(line);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "wsync_serve: %s\n", error.what());
      return 2;
    }
    if (!job.has_value()) continue;  // blank or comment
    if (job->kind == ServeJob::Kind::kQuit) {
      check_deadline();
      break;
    }
    if (job->kind == ServeJob::Kind::kPing) {
      std::printf("pong\n");
      std::fflush(stdout);
      continue;
    }

    std::vector<Scenario> overridden;
    if (job->kind == ServeJob::Kind::kRun) {
      const Scenario* scenario = ScenarioRegistry::find(job->name);
      if (scenario == nullptr) {
        std::fprintf(stderr,
                     "wsync_serve: unknown scenario '%s' (see wsync_run "
                     "--list)\n",
                     job->name.c_str());
        return 2;
      }
      overridden.push_back(with_overrides(*scenario, *job));
    } else {
      for (const Scenario& scenario : ScenarioRegistry::all()) {
        overridden.push_back(with_overrides(scenario, *job));
      }
    }
    std::vector<const Scenario*> planned;
    planned.reserve(overridden.size());
    for (const Scenario& scenario : overridden) {
      planned.push_back(&scenario);
    }

    SweepOutcome outcome;
    const telemetry::Stopwatch job_watch;
    try {
      const SweepPlan plan = make_plan(planned, job->seeds);
      StreamingSweepOptions sweep_options;
      sweep_options.window = static_cast<size_t>(options.window);
      sink.set_plan(&plan);
      outcome = run_streaming_sweep(plan, pool, sweep_options, sink);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "wsync_serve: %s\n", error.what());
      return 2;
    }
    ++executed_jobs;
    if (outcome.failed_scenarios > 0) ++failed_jobs;
    const ThreadPool::Stats pool_stats = pool.stats();
    std::printf("stat jobs=%zu failed=%d job_millis=%.3f "
                "pool_busy_millis=%.3f pool_tasks=%lld pool_stolen=%lld\n",
                executed_jobs, failed_jobs, job_watch.elapsed_millis(),
                static_cast<double>(pool_stats.busy_nanos) / 1e6,
                static_cast<long long>(pool_stats.tasks_executed),
                static_cast<long long>(pool_stats.tasks_stolen));
    std::fflush(stdout);
    // Deadline-fires-during-drain: latch before blocking on the next line.
    if (check_deadline()) break;
  }

  if (json_writer.has_value()) json_writer->finish();
  std::printf("serve: done (%zu job(s), %d failed)\n", executed_jobs,
              failed_jobs);
  if (failed_jobs > 0) return 1;
  return deadline_fired ? 3 : 0;
}

}  // namespace
}  // namespace wsync

int main(int argc, char** argv) {
  wsync::Options options;
  if (!wsync::parse_args(argc, argv, &options)) {
    wsync::print_usage(stderr);
    return 2;
  }
  if (options.jobs_path.empty()) return wsync::serve(options, std::cin);
  std::ifstream jobs(options.jobs_path);
  if (!jobs) {
    std::fprintf(stderr, "wsync_serve: cannot read --jobs '%s'\n",
                 options.jobs_path.c_str());
    return 2;
  }
  return wsync::serve(options, jobs);
}
